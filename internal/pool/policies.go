// Package pool implements the dynamic pre-warmed container pool of §4 and
// the cold-start-mitigation baselines of §8.1: the providers' fixed
// keep-alive, OpenWhisk-style reactive autoscaling, the histogram
// keep-alive policy of "Serverless in the Wild" (Shahrad et al. 2020),
// FaaSCache's greedy-dual caching (Fuerst & Sharma 2021), IceBreaker's
// Fourier prediction (Roy et al. 2022), and Aquatope's hybrid-Bayesian
// predictive pool with uncertainty headroom (plus the AquaLite ablation
// without it).
package pool

import (
	"math"

	"aquatope/internal/bayesnn"
	"aquatope/internal/stats"
	"aquatope/internal/timeseries"
)

// FitData is the training history handed to a policy before a run.
type FitData struct {
	// Demand is the per-minute number of containers required.
	Demand []float64
	// Arrivals are invocation timestamps in seconds (for inter-arrival
	// policies).
	Arrivals []float64
	// FeatFn returns per-minute auxiliary features for index i of Demand
	// (time of day / week, trigger type).
	FeatFn func(i int) []float64
}

// Decision is a policy's output for the next window.
type Decision struct {
	// Target is the pre-warm pool size to maintain; negative leaves the
	// pool unmanaged (keep-alive only).
	Target int
	// KeepAlive, when positive, installs this idle-container lifetime.
	KeepAlive float64
	// Predicted is the policy's raw demand forecast before headroom and
	// clamping (diagnostics; zero for non-predictive policies).
	Predicted float64
	// Headroom is the uncertainty margin added on top of Predicted
	// (z·std for Aquatope; zero elsewhere).
	Headroom float64
}

// Policy sizes a function's container pool once per adjustment interval.
type Policy interface {
	Name() string
	// Fit trains the policy on historical data before the run.
	Fit(data FitData)
	// Decide returns the decision for the next window given the demand
	// history observed so far (history[len-1] is the last full minute)
	// and the absolute minute index.
	Decide(history []float64, minute int) Decision
}

// ---------------------------------------------------------------------------

// FixedKeepAlive is the provider default: keep a container for a fixed time
// after its last invocation and never pre-warm.
type FixedKeepAlive struct {
	// Duration defaults to 600s (the 10-minute industry norm).
	Duration float64
}

// Name implements Policy.
func (p *FixedKeepAlive) Name() string { return "keepalive" }

// Fit implements Policy.
func (p *FixedKeepAlive) Fit(FitData) {}

// Decide implements Policy.
func (p *FixedKeepAlive) Decide([]float64, int) Decision {
	d := p.Duration
	if d <= 0 {
		d = 600
	}
	return Decision{Target: -1, KeepAlive: d}
}

// ---------------------------------------------------------------------------

// Autoscale is reactive feedback scaling (OpenWhisk stem cells / AWS-style
// autoscaling): scale up fast when demand approaches capacity, down slowly
// when utilization is low. Being reactive, it lags rapid load fluctuation
// (§8.1).
type Autoscale struct {
	// UpFactor multiplies observed demand on scale-up (default 1.5).
	UpFactor float64
	// DownStep is the multiplicative decay on scale-down (default 0.9).
	DownStep float64
	prev     float64
}

// Name implements Policy.
func (p *Autoscale) Name() string { return "autoscale" }

// Fit implements Policy.
func (p *Autoscale) Fit(FitData) {}

// Decide implements Policy.
func (p *Autoscale) Decide(history []float64, _ int) Decision {
	up := p.UpFactor
	if up <= 0 {
		up = 1.5
	}
	down := p.DownStep
	if down <= 0 {
		down = 0.9
	}
	var demand float64
	if len(history) > 0 {
		demand = history[len(history)-1]
	}
	target := p.prev
	if demand >= p.prev {
		target = demand * up // large step up
	} else {
		target = p.prev * down // small step down
		if target < demand {
			target = demand
		}
	}
	p.prev = target
	return Decision{Target: int(math.Ceil(target))}
}

// ---------------------------------------------------------------------------

// Histogram is the keep-alive policy of Shahrad et al.: it maintains the
// function's inter-arrival-time distribution and keeps containers alive for
// its 99th percentile, so most invocations land on a warm container without
// holding memory far past the typical gap.
type Histogram struct {
	// Percentile defaults to 99.
	Percentile float64
	// BoundSec caps the keep-alive (default 2 hours, per the paper's
	// 4-hour practical bound scaled to our shorter traces).
	BoundSec float64
	gaps     []float64
}

// Name implements Policy.
func (p *Histogram) Name() string { return "histogram" }

// Fit implements Policy.
func (p *Histogram) Fit(data FitData) {
	p.gaps = nil
	for i := 1; i < len(data.Arrivals); i++ {
		p.gaps = append(p.gaps, data.Arrivals[i]-data.Arrivals[i-1])
	}
}

// Decide implements Policy.
func (p *Histogram) Decide([]float64, int) Decision {
	pct := p.Percentile
	if pct <= 0 {
		pct = 99
	}
	bound := p.BoundSec
	if bound <= 0 {
		bound = 7200
	}
	ka := 600.0
	if len(p.gaps) > 4 {
		ka = stats.Percentile(p.gaps, pct)
	}
	if ka < 60 {
		ka = 60
	}
	if ka > bound {
		ka = bound
	}
	return Decision{Target: -1, KeepAlive: ka}
}

// ---------------------------------------------------------------------------

// FaaSCache adapts Fuerst & Sharma's greedy-dual container caching: idle
// containers stay cached (long keep-alive) and are evicted LRU-style only
// under memory pressure — which the cluster simulator performs natively —
// with a conservative reactive pool as fallback. In plentiful-memory
// deployments it behaves like autoscaling (§8.1).
type FaaSCache struct {
	auto Autoscale
}

// Name implements Policy.
func (p *FaaSCache) Name() string { return "faascache" }

// Fit implements Policy.
func (p *FaaSCache) Fit(FitData) {}

// Decide implements Policy.
func (p *FaaSCache) Decide(history []float64, minute int) Decision {
	d := p.auto.Decide(history, minute)
	// Conservative dynamic auto-scaling plus cache-until-evicted idles.
	d.Target = int(math.Ceil(float64(d.Target) * 0.8))
	d.KeepAlive = 3600
	return d
}

// ---------------------------------------------------------------------------

// IceBreaker pre-warms containers according to a Fourier-transformation
// forecast of the invocation pattern (Roy et al., ASPLOS'22) and shuts
// them down right after the predicted demand passes.
type IceBreaker struct {
	// Harmonics defaults to 8, Window to 256 minutes.
	Harmonics int
	Window    int
	model     *timeseries.Fourier
	fitted    []float64
}

// Name implements Policy.
func (p *IceBreaker) Name() string { return "icebreaker" }

// Fit implements Policy.
func (p *IceBreaker) Fit(data FitData) {
	h := p.Harmonics
	if h <= 0 {
		h = 8
	}
	w := p.Window
	if w <= 0 {
		w = 256
	}
	p.model = timeseries.NewFourier(h, w)
	p.model.Fit(data.Demand)
	p.fitted = append([]float64(nil), data.Demand...)
}

// Decide implements Policy.
func (p *IceBreaker) Decide(history []float64, _ int) Decision {
	if p.model == nil {
		p.model = timeseries.NewFourier(8, 256)
	}
	full := append(append([]float64(nil), p.fitted...), history...)
	var pred float64
	if len(full) > 8 {
		// One-step-ahead forecast from the rolling window.
		f := timeseries.NewFourier(8, 256)
		f.Fit(full[:len(full)-1])
		pred = f.Forecast(full[len(full)-1:])[0]
	} else if len(full) > 0 {
		pred = full[len(full)-1]
	}
	if pred < 0 {
		pred = 0
	}
	return Decision{Target: int(math.Ceil(pred)), KeepAlive: 120, Predicted: pred}
}

// ---------------------------------------------------------------------------

// PredictorPolicy adapts any timeseries.Predictor into a pool policy
// (used for the ARIMA and vanilla-LSTM rows of Table 1).
type PredictorPolicy struct {
	Label     string
	Predictor timeseries.Predictor
	fitted    []float64
}

// Name implements Policy.
func (p *PredictorPolicy) Name() string { return p.Label }

// Fit implements Policy.
func (p *PredictorPolicy) Fit(data FitData) {
	p.Predictor.Fit(data.Demand)
	p.fitted = append([]float64(nil), data.Demand...)
}

// Decide implements Policy.
func (p *PredictorPolicy) Decide(history []float64, _ int) Decision {
	if len(history) == 0 {
		return Decision{Target: 0, KeepAlive: 120}
	}
	pred := p.Predictor.Forecast(history[len(history)-1:])
	t := 0.0
	if len(pred) > 0 {
		t = pred[len(pred)-1]
	}
	return Decision{Target: int(math.Ceil(t)), KeepAlive: 120, Predicted: t}
}

// ---------------------------------------------------------------------------

// Aquatope is the paper's dynamic pre-warmed container pool (§4): the
// hybrid Bayesian LSTM encoder-decoder + MLP model predicts next-window
// demand with uncertainty, and the pool is sized at the predictive mean
// plus HeadroomZ standard deviations so fluctuating loads stay covered.
// With Lite=true the uncertainty term is dropped (the AquaLite ablation of
// Fig. 11).
type Aquatope struct {
	// Model configuration; zero value uses a compact default sized for
	// minute-scale traces.
	ModelConfig bayesnn.Config
	// Window is the encoder history length in minutes (default 24).
	Window int
	// HeadroomZ scales the uncertainty headroom (default 1.0).
	HeadroomZ float64
	// Lookahead is the forward window (minutes) whose peak demand the
	// model is trained to predict: the pool must cover the next interval's
	// peak, not the instantaneous count (default 4).
	Lookahead int
	// CapWindowMin caps the pool target at the maximum demand observed
	// over this trailing window (default 180 min): uncertainty headroom
	// never holds more containers than the workload has recently needed.
	CapWindowMin int
	// MaxTrainSamples subsamples the training set to bound training time
	// (0 = use everything). The most recent samples are kept; earlier
	// ones are dropped uniformly.
	MaxTrainSamples int
	// Lite disables uncertainty (AquaLite).
	Lite bool

	model  *bayesnn.Model
	featFn func(i int) []float64
	offset int // minutes of training history before the run
}

// Name implements Policy.
func (p *Aquatope) Name() string {
	if p.Lite {
		return "aqualite"
	}
	return "aquatope"
}

func (p *Aquatope) window() int {
	if p.Window <= 0 {
		return 24
	}
	return p.Window
}

func (p *Aquatope) lookahead() int {
	if p.Lookahead <= 0 {
		return 4
	}
	return p.Lookahead
}

// recencyFeatures derives phase information from the demand series up to
// (and excluding) index i: log-scaled minutes since the last activity, the
// size of that activity burst, and the recent mean demand. These play the
// role of the inter-arrival signal that histogram policies exploit, handed
// to the prediction network as external features so it does not need to
// learn to count timesteps.
func recencyFeatures(demand []float64, i int) []float64 {
	since := -1
	last := 0.0
	for j := i - 1; j >= 0 && j >= i-240; j-- {
		if demand[j] > 0 {
			since = i - j
			last = demand[j]
			break
		}
	}
	sinceF := 5.5 // log1p(240)-ish cap when nothing seen
	if since >= 0 {
		sinceF = math.Log1p(float64(since))
	}
	var recent float64
	n := 0
	for j := i - 1; j >= 0 && j >= i-30; j-- {
		recent += demand[j]
		n++
	}
	if n > 0 {
		recent /= float64(n)
	}
	return []float64{sinceF, last, recent}
}

// NumRecencyFeatures is the length of recencyFeatures' output.
const NumRecencyFeatures = 3

// forwardMax returns, per index, the maximum of xs[i:i+k].
func forwardMax(xs []float64, k int) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		m := xs[i]
		for j := i + 1; j < i+k && j < len(xs); j++ {
			if xs[j] > m {
				m = xs[j]
			}
		}
		out[i] = m
	}
	return out
}

// DefaultModelConfig returns a compact hybrid-model configuration suitable
// for minute-scale pool prediction.
func DefaultModelConfig(featDim int) bayesnn.Config {
	cfg := bayesnn.DefaultConfig(1+featDim, featDim)
	cfg.EncoderHidden = 24
	cfg.DecoderHidden = 8
	cfg.EncoderLayers = 1
	cfg.PredHidden = []int{24, 12}
	cfg.EncoderEpochs = 15
	cfg.PredEpochs = 40
	cfg.MCSamples = 15
	cfg.HeteroscedasticCounts = true
	return cfg
}

// Fit implements Policy: trains the hybrid model on the demand history.
func (p *Aquatope) Fit(data FitData) {
	feat := data.FeatFn
	if feat == nil {
		feat = func(int) []float64 { return nil }
	}
	p.featFn = feat
	p.offset = len(data.Demand)
	cfg := p.ModelConfig
	if cfg.Input == 0 {
		cfg = DefaultModelConfig(len(feat(0)))
	}
	cfg.ExtDim = len(feat(0)) + NumRecencyFeatures
	p.model = bayesnn.New(cfg)
	// Train against the forward-peak demand (see Lookahead): the decoder
	// reconstructs the raw series while the prediction target is the peak
	// the pool must cover. External features combine calendar/trigger
	// context with recency-derived phase information.
	w := p.window()
	peaks := forwardMax(data.Demand, p.lookahead())
	var samples []bayesnn.Sample
	for i := w; i+cfg.Horizon <= len(data.Demand); i++ {
		hist := make([][]float64, w)
		for t := 0; t < w; t++ {
			idx := i - w + t
			hist[t] = append([]float64{data.Demand[idx]}, feat(idx)...)
		}
		samples = append(samples, bayesnn.Sample{
			History:  hist,
			Future:   append([]float64(nil), data.Demand[i:i+cfg.Horizon]...),
			External: append(feat(i), recencyFeatures(data.Demand, i)...),
			Target:   peaks[i],
		})
	}
	if p.MaxTrainSamples > 0 && len(samples) > p.MaxTrainSamples {
		keep := make([]bayesnn.Sample, 0, p.MaxTrainSamples)
		// Keep the most recent half budget contiguously; stride-sample
		// the rest from earlier history.
		recent := p.MaxTrainSamples / 2
		older := samples[:len(samples)-recent]
		stride := len(older) / (p.MaxTrainSamples - recent)
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(older); i += stride {
			keep = append(keep, older[i])
		}
		keep = append(keep, samples[len(samples)-recent:]...)
		samples = keep
	}
	p.model.Train(samples)
}

// Decide implements Policy.
func (p *Aquatope) Decide(history []float64, minute int) Decision {
	w := p.window()
	if p.model == nil || !p.model.Trained() || len(history) < w {
		// Cold model: fall back to last demand.
		t := 0.0
		if len(history) > 0 {
			t = history[len(history)-1]
		}
		return Decision{Target: int(math.Ceil(t)), KeepAlive: 120, Predicted: t}
	}
	hist := make([][]float64, w)
	for t := 0; t < w; t++ {
		idx := len(history) - w + t
		hist[t] = append([]float64{history[idx]}, p.featFn(minute-w+t)...)
	}
	ext := append(p.featFn(minute), recencyFeatures(history, len(history))...)
	var target, predicted, headroom float64
	if p.Lite {
		target = p.model.PredictDeterministic(hist, ext)
		predicted = target
	} else {
		pred := p.model.Predict(hist, ext)
		z := p.HeadroomZ
		if z <= 0 {
			z = 1
		}
		target = pred.UpperBound(z)
		predicted = pred.Mean
		headroom = target - pred.Mean
	}
	// Reactive floor: never shrink below the demand just observed — a
	// burst in progress must not have its containers reclaimed mid-flight.
	if last := history[len(history)-1]; last > target {
		target = last
	}
	// Cap at the recent historical peak: headroom should cover recurring
	// bursts, not hold more than the workload has ever needed lately.
	capWin := p.CapWindowMin
	if capWin <= 0 {
		capWin = 180
	}
	peak := 0.0
	for i := len(history) - 1; i >= 0 && i >= len(history)-capWin; i-- {
		if history[i] > peak {
			peak = history[i]
		}
	}
	if peak > 0 && target > peak {
		target = peak
	}
	if target < 0 {
		target = 0
	}
	return Decision{Target: int(math.Ceil(target)), KeepAlive: 120, Predicted: predicted, Headroom: headroom}
}
