package faas

import (
	"math"

	"aquatope/internal/stats"
)

// SyntheticModel is a configurable resource-performance model emulating the
// paper's function generator (§7.1): "configurable resource-intensive
// functions that emulate varying CPU and memory workloads". Its latency
// response has the shape real functions exhibit: Amdahl-style diminishing
// returns in CPU, a memory knee below which performance collapses, a cold
// execution penalty from re-building the execution context, and
// multiplicative lognormal jitter.
type SyntheticModel struct {
	// BaseExecSec is the warm execution time at 1 CPU, ample memory,
	// input size 1.
	BaseExecSec float64
	// CPUShare is the parallelizable fraction of the work (0..1): exec
	// time = base × (share/cpu + 1-share).
	CPUShare float64
	// MemKneeMB is the memory under which execution degrades quadratically.
	MemKneeMB float64
	// ColdInitSec is the container initialization time (runtime + deps).
	ColdInitSec float64
	// ColdExecPenalty multiplies the first execution in a fresh container
	// (context rebuild: SDK clients, models, connections).
	ColdExecPenalty float64
	// InputExponent scales execution time with input size^exponent.
	InputExponent float64
	// JitterStd is the lognormal sigma of intrinsic execution noise.
	JitterStd float64
}

var _ PerfModel = (*SyntheticModel)(nil)

// DefaultSyntheticModel returns a moderately CPU-bound function profile.
func DefaultSyntheticModel() *SyntheticModel {
	return &SyntheticModel{
		BaseExecSec:     0.5,
		CPUShare:        0.7,
		MemKneeMB:       256,
		ColdInitSec:     1.5,
		ColdExecPenalty: 1.6,
		InputExponent:   1,
		JitterStd:       0.05,
	}
}

// InitTime implements PerfModel. Initialization is mildly CPU-sensitive
// (unpacking, JIT) with jitter.
func (m *SyntheticModel) InitTime(cfg ResourceConfig, rng *stats.RNG) float64 {
	t := m.ColdInitSec * (0.6 + 0.4/math.Max(cfg.CPU, 0.1))
	if m.JitterStd > 0 {
		t *= rng.LogNormal(0, m.JitterStd)
	}
	return t
}

// ExecTime implements PerfModel.
func (m *SyntheticModel) ExecTime(cfg ResourceConfig, cold bool, inputSize float64, rng *stats.RNG) float64 {
	if inputSize <= 0 {
		inputSize = 1
	}
	work := m.BaseExecSec * math.Pow(inputSize, m.InputExponent)
	cpu := math.Max(cfg.CPU, 0.05)
	t := work * (m.CPUShare/cpu + (1 - m.CPUShare))
	if cfg.MemoryMB < m.MemKneeMB {
		ratio := m.MemKneeMB / math.Max(cfg.MemoryMB, 1)
		t *= ratio * ratio
	}
	if cold && m.ColdExecPenalty > 1 {
		t *= m.ColdExecPenalty
	}
	if m.JitterStd > 0 {
		t *= rng.LogNormal(0, m.JitterStd)
	}
	return t
}

// BaseMemoryMB implements PerfModel.
func (m *SyntheticModel) BaseMemoryMB() float64 { return m.MemKneeMB }
