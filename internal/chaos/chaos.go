// Package chaos is the deterministic fault-injection subsystem: it scripts
// fault scenarios — invoker crash/recover windows, container init-failure
// and execution-kill probability windows, straggler slowdown episodes —
// against the faas simulator. Every fault is driven by internal/sim events
// on the cluster's engine and every random choice comes from explicit
// seeds, so two runs of the same scenario with the same seed are
// byte-identical (the determinism test in chaos_test.go diffs full span
// dumps). The point of the subsystem is evaluating the resilience layer
// (workflow retries/hedging, pool re-warming, failure-aware routing) under
// reproducible adversity, per the paper's premise that serverless QoS
// management must tolerate the platform's own churn.
package chaos

import (
	"fmt"
	"sort"

	"aquatope/internal/faas"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// Kind enumerates the fault archetypes the injector can script.
type Kind string

const (
	// KindInvokerCrash takes an invoker down at At: all resident containers
	// die, in-flight invocations on it fail, and routing avoids it until it
	// recovers Duration seconds later (Duration 0 = never recovers).
	KindInvokerCrash Kind = "invoker-crash"
	// KindFaultRates opens a window [At, At+Duration) during which new
	// containers fail to initialize with probability Rates.InitFailure and
	// running invocations are killed mid-execution with probability
	// Rates.ExecKill. Overlapping windows add their rates.
	KindFaultRates Kind = "fault-rates"
	// KindStraggler multiplies execution times on one invoker by Factor for
	// the window [At, At+Duration) — a degraded-host episode.
	KindStraggler Kind = "straggler"
	// KindBurst injects background invocations at Rate per second for the
	// window [At, At+Duration) — a demand surge stacked on top of the
	// workload, driving the platform through and past saturation. Function
	// targets one function; empty round-robins over every registered one.
	KindBurst Kind = "burst"
	// KindCrash kills the controller process itself at At — the fault the
	// crash-safe serving loop (internal/serve) exists to survive. The
	// injector invokes its registered crash hook (see SetOnCrash); with no
	// hook armed the event is inert. The event emits no telemetry span and
	// is always scheduled even when inert, so a killed-and-restored run and
	// an uninterrupted reference run see identical engine event sequences —
	// the byte-identity contract depends on it.
	KindCrash Kind = "controller-crash"
)

// Fault is one scripted fault episode.
type Fault struct {
	Kind Kind
	// At is the activation time (simulation seconds).
	At float64
	// Duration is the episode length; for crashes it is the recovery delay
	// and 0 means the invoker never comes back.
	Duration float64
	// Invoker targets crash and straggler faults.
	Invoker int
	// Rates carries the probabilities of a fault-rates window.
	Rates faas.FaultRates
	// Factor is the straggler's execution-time multiplier (> 1).
	Factor float64
	// Rate is the burst's injection rate in invocations per second.
	Rate float64
	// Function targets burst faults (empty = all registered functions,
	// round-robin).
	Function string
}

// Scenario is a named, ordered fault script.
type Scenario struct {
	Name   string
	Faults []Fault
}

// Empty reports whether the scenario injects nothing.
func (s Scenario) Empty() bool { return len(s.Faults) == 0 }

// Injector arms a scenario on a cluster's event engine.
type Injector struct {
	cl     *faas.Cluster
	tracer telemetry.Tracer
	scn    Scenario
	armed  bool

	// curRates accumulates overlapping fault-rate windows.
	curRates faas.FaultRates

	// onCrash, when set, is invoked by KindCrash faults (it does not
	// return in a real kill; tests panic a sentinel). Nil leaves the
	// fault inert.
	onCrash func()
}

// SetOnCrash registers the controller-kill hook driven by KindCrash faults.
// Restored and reference runs leave it unset so the scripted kill fires as
// a no-op.
func (in *Injector) SetOnCrash(fn func()) { in.onCrash = fn }

// New returns an injector for the scenario, emitting chaos.fault spans to
// the cluster's tracer.
func New(cl *faas.Cluster, scn Scenario) *Injector {
	return &Injector{cl: cl, tracer: cl.Tracer(), scn: scn}
}

// Scenario returns the script the injector was built with.
func (in *Injector) Scenario() Scenario { return in.scn }

// Arm schedules every fault of the scenario on the cluster's engine. Faults
// are scheduled in (At, script order): the engine's stable FIFO for
// simultaneous events keeps ties deterministic. Arm is idempotent.
func (in *Injector) Arm() {
	if in.armed {
		return
	}
	in.armed = true
	eng := in.cl.Engine()
	faults := append([]Fault(nil), in.scn.Faults...)
	sort.SliceStable(faults, func(a, b int) bool { return faults[a].At < faults[b].At })
	for _, f := range faults {
		f := f
		eng.Schedule(f.At, func() { in.fire(f) })
	}
}

func (in *Injector) fire(f Fault) {
	eng := in.cl.Engine()
	now := eng.Now()
	if f.Kind == KindCrash {
		// No span: the dumps of a crashed process are discarded, and the
		// inert firing in restored/reference runs must not add telemetry
		// that the checkpointed prefix of the killed run lacked.
		if in.onCrash != nil {
			in.onCrash()
		}
		return
	}
	span := in.tracer.StartSpan(telemetry.KindChaosFault, string(f.Kind), 0, now)
	end := func(fields telemetry.Fields) {
		if span != 0 {
			in.tracer.EndSpan(span, eng.Now(), fields)
		}
	}
	switch f.Kind {
	case KindInvokerCrash:
		in.cl.CrashInvoker(f.Invoker)
		if f.Duration > 0 {
			eng.After(f.Duration, func() {
				in.cl.RecoverInvoker(f.Invoker)
				end(telemetry.Fields{"invoker": float64(f.Invoker), "recover_s": f.Duration})
			})
		} else {
			end(telemetry.Fields{"invoker": float64(f.Invoker), "recover_s": 0})
		}
	case KindFaultRates:
		in.curRates.InitFailure += f.Rates.InitFailure
		in.curRates.ExecKill += f.Rates.ExecKill
		in.cl.SetFaultRates(in.curRates)
		closeWindow := func() {
			in.curRates.InitFailure -= f.Rates.InitFailure
			in.curRates.ExecKill -= f.Rates.ExecKill
			in.cl.SetFaultRates(in.curRates)
			end(telemetry.Fields{
				"init_failure": f.Rates.InitFailure,
				"exec_kill":    f.Rates.ExecKill,
			})
		}
		if f.Duration > 0 {
			eng.After(f.Duration, closeWindow)
		} else {
			// A zero-duration rates fault is permanent: leave the rates on
			// and close the span as a point.
			end(telemetry.Fields{
				"init_failure": f.Rates.InitFailure,
				"exec_kill":    f.Rates.ExecKill,
			})
		}
	case KindStraggler:
		in.cl.SetStraggler(f.Invoker, f.Factor)
		closeWindow := func() {
			in.cl.SetStraggler(f.Invoker, 1)
			end(telemetry.Fields{"invoker": float64(f.Invoker), "factor": f.Factor})
		}
		if f.Duration > 0 {
			eng.After(f.Duration, closeWindow)
		} else {
			end(telemetry.Fields{"invoker": float64(f.Invoker), "factor": f.Factor})
		}
	case KindBurst:
		fns := in.cl.Functions()
		if f.Function != "" {
			fns = []string{f.Function}
		}
		if f.Rate <= 0 || f.Duration <= 0 || len(fns) == 0 {
			end(telemetry.Fields{"rate": f.Rate, "injected": 0})
			return
		}
		step := 1 / f.Rate
		until := now + f.Duration
		injected := 0
		var inject func()
		inject = func() {
			if eng.Now() >= until {
				end(telemetry.Fields{"rate": f.Rate, "injected": float64(injected)})
				return
			}
			// Background pressure: fire-and-forget, no deadline — under
			// bounded queues the platform is free to shed it.
			if err := in.cl.Invoke(fns[injected%len(fns)], 1, nil); err != nil {
				end(telemetry.Fields{"rate": f.Rate, "injected": float64(injected)})
				return
			}
			injected++
			eng.After(step, inject)
		}
		inject()
	default:
		end(nil)
	}
}

// Names lists the builtin scenario names accepted by Builtin (and the
// -chaos CLI flag), in stable order.
func Names() []string {
	return []string{"invoker-crash", "container-churn", "stragglers", "mixed",
		"overload", "overload-crash", "kill-restore", "random"}
}

// Builtin returns a named scenario scaled to a run horizon (seconds).
// "random" additionally uses seed to draw a randomized script; the other
// scenarios are fixed functions of the horizon. ok is false for unknown
// names.
func Builtin(name string, horizon float64, seed int64) (scn Scenario, ok bool) {
	if horizon <= 0 {
		horizon = 600
	}
	h := horizon
	switch name {
	case "invoker-crash":
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindInvokerCrash, At: 0.25 * h, Duration: 0.20 * h, Invoker: 1},
			{Kind: KindInvokerCrash, At: 0.60 * h, Duration: 0.15 * h, Invoker: 3},
		}}, true
	case "container-churn":
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindFaultRates, At: 0.15 * h, Duration: 0.60 * h,
				Rates: faas.FaultRates{InitFailure: 0.05, ExecKill: 0.03}},
		}}, true
	case "stragglers":
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindStraggler, At: 0.20 * h, Duration: 0.35 * h, Invoker: 0, Factor: 3},
			{Kind: KindStraggler, At: 0.50 * h, Duration: 0.35 * h, Invoker: 2, Factor: 2.5},
		}}, true
	case "mixed":
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindFaultRates, At: 0.10 * h, Duration: 0.75 * h,
				Rates: faas.FaultRates{InitFailure: 0.03, ExecKill: 0.02}},
			{Kind: KindInvokerCrash, At: 0.30 * h, Duration: 0.20 * h, Invoker: 2},
			{Kind: KindStraggler, At: 0.55 * h, Duration: 0.30 * h, Invoker: 4, Factor: 2.5},
		}}, true
	case "overload":
		// Two demand surges: a short sharp burst, then a longer sustained
		// one — the platform must shed its way through both.
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindBurst, At: 0.30 * h, Duration: 0.10 * h, Rate: 6},
			{Kind: KindBurst, At: 0.60 * h, Duration: 0.25 * h, Rate: 3},
		}}, true
	case "overload-crash":
		// Invoker loss in the middle of a surge: capacity shrinks exactly
		// when demand peaks.
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindBurst, At: 0.30 * h, Duration: 0.30 * h, Rate: 4},
			{Kind: KindInvokerCrash, At: 0.40 * h, Duration: 0.15 * h, Invoker: 1},
		}}, true
	case "kill-restore":
		// The overload-crash script plus a controller kill in the middle
		// of the surge: the worst moment to lose the controller's learned
		// state. Serve-mode runs arm a crash hook; batch runs and restored
		// runs leave the kill inert.
		return Scenario{Name: name, Faults: []Fault{
			{Kind: KindBurst, At: 0.30 * h, Duration: 0.30 * h, Rate: 4},
			{Kind: KindInvokerCrash, At: 0.40 * h, Duration: 0.15 * h, Invoker: 1},
			{Kind: KindCrash, At: 0.55 * h},
		}}, true
	case "random":
		return Random(h, 6, 1, seed), true
	}
	return Scenario{}, false
}

// Random draws a randomized scenario: a few crash windows, a fault-rates
// window and a straggler episode, with times, targets and magnitudes drawn
// from a seeded RNG. intensity scales fault probabilities and episode
// counts (1 = moderate). The same (horizon, invokers, intensity, seed)
// always yields the same script.
func Random(horizon float64, invokers int, intensity float64, seed int64) Scenario {
	if invokers < 1 {
		invokers = 1
	}
	if intensity <= 0 {
		intensity = 1
	}
	rng := stats.NewRNG(seed ^ 0x6a05_c4a0)
	var faults []Fault
	crashes := 1 + int(intensity)
	for i := 0; i < crashes; i++ {
		at := (0.1 + 0.7*rng.Float64()) * horizon
		faults = append(faults, Fault{
			Kind:     KindInvokerCrash,
			At:       at,
			Duration: (0.05 + 0.15*rng.Float64()) * horizon,
			Invoker:  int(rng.Float64() * float64(invokers)),
		})
	}
	faults = append(faults, Fault{
		Kind:     KindFaultRates,
		At:       (0.1 + 0.3*rng.Float64()) * horizon,
		Duration: (0.3 + 0.4*rng.Float64()) * horizon,
		Rates: faas.FaultRates{
			InitFailure: 0.04 * intensity * rng.Float64(),
			ExecKill:    0.03 * intensity * rng.Float64(),
		},
	})
	faults = append(faults, Fault{
		Kind:     KindStraggler,
		At:       (0.2 + 0.5*rng.Float64()) * horizon,
		Duration: (0.1 + 0.3*rng.Float64()) * horizon,
		Invoker:  int(rng.Float64() * float64(invokers)),
		Factor:   2 + 2*rng.Float64(),
	})
	return Scenario{Name: fmt.Sprintf("random-%d", seed), Faults: faults}
}
