// Package checkpoint defines the versioned, deterministic snapshot format
// used by the crash-safe serving loop (internal/serve). It has three layers:
//
//   - Encoder/Decoder: an append-only binary codec over primitive values
//     (varints, IEEE-754 floats, strings, float slices). Encoding a value
//     sequence is a pure function of the values — no maps, no pointers, no
//     timestamps — so equal component state always produces equal bytes.
//     Every Decoder read is bounds-checked and returns the zero value after
//     the first error; malformed input can never panic a decoder.
//
//   - File: the AQCP container — magic, format version, a CRC-guarded
//     opaque header blob, and CRC-guarded named sections, with a whole-file
//     CRC trailer. Truncated, bit-flipped, or version-skewed files are
//     rejected by Decode with an error before any section reaches a
//     component Restorer, so a partial restore cannot happen silently.
//
//   - Snapshotter/Restorer: the interfaces stateful components implement.
//
// The package deliberately depends only on the standard library so every
// internal package can import it without cycles.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Snapshotter is implemented by components whose state can be serialized
// deterministically. Snapshot must be read-only: serving writes checkpoints
// mid-run and a mutating snapshot would make the checkpointed run diverge
// from an unmonitored one.
type Snapshotter interface {
	Snapshot(enc *Encoder)
}

// Restorer is implemented by components that can reload a snapshot produced
// by their own Snapshot method on a structurally identical instance (same
// config, same shapes). Restore validates shape markers and returns an error
// on any mismatch rather than partially applying state.
type Restorer interface {
	Restore(dec *Decoder) error
}

// Encoder accumulates a deterministic byte encoding of primitive values.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes accumulated so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a zigzag-encoded signed varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends the 8 little-endian bytes of the IEEE-754 representation.
// NaN payloads and signed zeros round-trip exactly.
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// F64s appends a length-prefixed float64 slice. A nil slice encodes
// identically to an empty one.
func (e *Encoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// I64s appends a length-prefixed signed varint slice.
func (e *Encoder) I64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}

// Bools appends a length-prefixed bool slice.
func (e *Encoder) Bools(v []bool) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// ErrCorrupt is the base error for any malformed encoding; all decoder and
// file-format errors wrap it, so callers can errors.Is against a single
// sentinel.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// ErrShape is returned by component Restore methods when a structurally
// valid snapshot does not fit the receiving instance (different layer
// sizes, window lengths, parameter counts) — i.e. the snapshot came from a
// different configuration.
var ErrShape = fmt.Errorf("%w: snapshot shape does not match component", ErrCorrupt)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Decoder reads values encoded by Encoder. Errors are sticky: after the
// first failure every read returns the zero value and Err reports the
// original cause. Decoder never panics on malformed input.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.off }

// Done returns an error when decoding failed or unread bytes remain — a
// trailing-garbage check for component Restore methods.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return corrupt("%d trailing bytes", len(d.data)-d.off)
	}
	return nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corrupt("offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// I64 reads a zigzag-encoded signed varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads an int encoded by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a 0/1 byte; any other value is an error.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.data) {
		d.fail("truncated bool")
		return false
	}
	b := d.data[d.off]
	if b > 1 {
		d.fail("bad bool byte %d", b)
		return false
	}
	d.off++
	return b == 1
}

// F64 reads an 8-byte IEEE-754 float.
func (d *Decoder) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// count validates a length prefix against the bytes actually remaining
// (each element occupies at least min bytes), so corrupt lengths fail fast
// instead of attempting enormous allocations.
func (d *Decoder) count(min int) (int, bool) {
	n := d.U64()
	if d.err != nil {
		return 0, false
	}
	if min > 0 && n > uint64(d.Remaining()/min) {
		d.fail("length %d exceeds remaining input", n)
		return 0, false
	}
	return int(n), true
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n, ok := d.count(1)
	if !ok {
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed byte slice (copied out of the input).
func (d *Decoder) Blob() []byte {
	n, ok := d.count(1)
	if !ok {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.data[d.off:d.off+n])
	d.off += n
	return b
}

// F64s reads a length-prefixed float64 slice. Zero length yields nil.
func (d *Decoder) F64s() []float64 {
	n, ok := d.count(8)
	if !ok || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}

// I64s reads a length-prefixed signed varint slice. Zero length yields nil.
func (d *Decoder) I64s() []int64 {
	n, ok := d.count(1)
	if !ok || n == 0 {
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	return v
}

// Bools reads a length-prefixed bool slice. Zero length yields nil.
func (d *Decoder) Bools() []bool {
	n, ok := d.count(1)
	if !ok || n == 0 {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = d.Bool()
	}
	return v
}

// Expect reads a string and errors unless it equals want — a cheap shape
// marker for Restore methods ("wrong section fed to wrong component").
func (d *Decoder) Expect(want string) {
	got := d.String()
	if d.err == nil && got != want {
		d.fail("marker mismatch: got %q want %q", got, want)
	}
}
