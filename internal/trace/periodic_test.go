package trace

import (
	"math"
	"sort"
	"testing"

	"aquatope/internal/stats"
)

func TestSynthesizePeriodicStructure(t *testing.T) {
	tr := SynthesizePeriodic(PeriodicGenConfig{
		DurationMin: 600, PeriodMin: 30, JitterFrac: 0.1, ClumpMean: 2, Seed: 1,
	})
	if !sort.Float64sAreSorted(tr.Arrivals) {
		t.Fatal("arrivals unsorted")
	}
	if len(tr.Arrivals) == 0 {
		t.Fatal("no arrivals")
	}
	// Cluster arrivals into clumps (gap > 5 min starts a new clump) and
	// check inter-clump gaps concentrate near the period.
	var clumpStarts []float64
	last := -1e18
	for _, a := range tr.Arrivals {
		if a-last > 300 {
			clumpStarts = append(clumpStarts, a)
		}
		last = a
	}
	if len(clumpStarts) < 10 {
		t.Fatalf("too few clumps: %d", len(clumpStarts))
	}
	var gaps []float64
	for i := 1; i < len(clumpStarts); i++ {
		gaps = append(gaps, clumpStarts[i]-clumpStarts[i-1])
	}
	mean := stats.Mean(gaps)
	if math.Abs(mean-1800) > 450 {
		t.Fatalf("mean clump gap %v, want ~1800s", mean)
	}
	if cv := stats.CV(gaps); cv > 0.5 {
		t.Fatalf("clump gaps too irregular: cv=%v", cv)
	}
}

func TestSynthesizePeriodicDiurnalThinning(t *testing.T) {
	dense := SynthesizePeriodic(PeriodicGenConfig{DurationMin: 2880, PeriodMin: 20, Seed: 2})
	thinned := SynthesizePeriodic(PeriodicGenConfig{DurationMin: 2880, PeriodMin: 20, Diurnal: 0.9, Seed: 2})
	if len(thinned.Arrivals) >= len(dense.Arrivals) {
		t.Fatal("diurnal gating should thin arrivals")
	}
}

func TestSynthesizePeriodicDefaults(t *testing.T) {
	tr := SynthesizePeriodic(PeriodicGenConfig{Seed: 3})
	if tr.DurationMin != MinutesPerDay {
		t.Fatalf("default duration = %d", tr.DurationMin)
	}
}

func TestBurstEpisodesRaiseRateLocally(t *testing.T) {
	base := Synthesize(GenConfig{DurationMin: 1440, MeanRatePerMin: 1, CV: 1, Seed: 4})
	burst := Synthesize(GenConfig{DurationMin: 1440, MeanRatePerMin: 1, CV: 1, Seed: 4,
		BurstEpisodesPerHour: 1.5, BurstDurationMin: 10, BurstMultiplier: 10})
	if len(burst.Arrivals) <= len(base.Arrivals) {
		t.Fatal("episodes should add arrivals")
	}
	// The busiest minute of the bursty trace should far exceed the
	// busiest minute of the base trace.
	if stats.Max(burst.Counts()) < 2*stats.Max(base.Counts()) {
		t.Fatalf("burst peak %v vs base peak %v", stats.Max(burst.Counts()), stats.Max(base.Counts()))
	}
}
