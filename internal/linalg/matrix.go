// Package linalg provides the small dense linear-algebra kernel the Gaussian
// process and Bayesian optimization packages rely on: column-major-free
// row-major matrices, Cholesky factorization with progressive jitter for
// nearly singular kernels, and triangular solves.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m*x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: mulvec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		var s float64
		for j, v := range x {
			s += mi[j] * v
		}
		out[i] = s
	}
	return out
}

// Add returns m+b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// ErrNotPSD is returned when Cholesky fails even after jitter escalation.
var ErrNotPSD = errors.New("linalg: matrix is not positive definite")

var errNonSquare = errors.New("linalg: cholesky of non-square matrix")

// Cholesky computes the lower-triangular L with A = L Lᵀ. If the
// factorization fails (A only positive semi-definite due to floating-point
// error, common with kernel matrices), it retries with exponentially growing
// diagonal jitter starting at 1e-10 up to 1e-4 before giving up.
func Cholesky(a *Matrix) (*Matrix, error) {
	l, _, err := CholeskyJitter(a)
	return l, err
}

func tryCholesky(a *Matrix, jitter float64) (*Matrix, bool) {
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j) + jitter
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, true
}

// SolveLower solves L y = b for lower-triangular L.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: solve length mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		li := l.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	return y
}

// SolveUpperT solves Lᵀ x = y for lower-triangular L (i.e. an upper
// triangular solve against the transpose without materializing it).
func SolveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	if len(y) != n {
		panic("linalg: solve length mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholSolve solves A x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// SolveLowerInto is SolveLower writing into caller-provided y (length n),
// allocation-free. b and y must not alias.
func SolveLowerInto(l *Matrix, b, y []float64) {
	n := l.Rows
	if len(b) != n || len(y) != n {
		panic("linalg: solve length mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		li := l.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
}

// SolveUpperTInto is SolveUpperT writing into caller-provided x (length n),
// allocation-free. y and x must not alias.
func SolveUpperTInto(l *Matrix, y, x []float64) {
	n := l.Rows
	if len(y) != n || len(x) != n {
		panic("linalg: solve length mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// GrowBorderInPlace extends a square matrix by one bordering row/column in
// place: the existing block keeps its values at the wider stride, the new
// column and row are filled with col (mirrored) and the corner with d. The
// backing array grows only when capacity runs out, so a sliding window at
// steady state reborders without allocating.
func (m *Matrix) GrowBorderInPlace(col []float64, d float64) {
	n := m.Rows
	if m.Cols != n || len(col) != n {
		panic("linalg: grow border shape mismatch")
	}
	need := (n + 1) * (n + 1)
	if cap(m.Data) < need {
		grown := make([]float64, need)
		copy(grown, m.Data)
		m.Data = grown
	}
	m.Data = m.Data[:need]
	// Widen the stride from the last row down; destinations start at or past
	// their sources, so pending rows are never clobbered.
	for i := n - 1; i >= 1; i-- {
		copy(m.Data[i*(n+1):i*(n+1)+n], m.Data[i*n:(i+1)*n])
	}
	for i := 0; i < n; i++ {
		m.Data[i*(n+1)+n] = col[i]
	}
	copy(m.Data[n*(n+1):n*(n+1)+n], col)
	m.Data[need-1] = d
	m.Rows, m.Cols = n+1, n+1
}

// ShrinkLeadingInPlace removes row and column 0 of a square matrix in place
// (every destination precedes its source), allocation-free.
func (m *Matrix) ShrinkLeadingInPlace() {
	n := m.Rows
	if m.Cols != n || n == 0 {
		panic("linalg: shrink shape mismatch")
	}
	for i := 1; i < n; i++ {
		copy(m.Data[(i-1)*(n-1):i*(n-1)], m.Data[i*n+1:(i+1)*n])
	}
	m.Rows, m.Cols = n-1, n-1
	m.Data = m.Data[:(n-1)*(n-1)]
}

// LogDetFromChol returns log|A| given the Cholesky factor L of A.
func LogDetFromChol(l *Matrix) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
