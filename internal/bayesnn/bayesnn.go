// Package bayesnn implements the paper's hybrid Bayesian neural network
// (§4.2): an LSTM encoder-decoder pretrained to reconstruct the upcoming
// invocation windows, whose final encoder hidden state is the latent
// variable Z; and a multi-layer-perceptron prediction network that maps
// Z concatenated with external features (time of day, day of week, trigger
// type) to the number of containers needed in the next window. Monte-Carlo
// dropout — variational in the encoder, standard in the prediction network —
// turns T stochastic forward passes into a predictive mean and variance.
package bayesnn

import (
	"math"

	"aquatope/internal/nn"
	"aquatope/internal/stats"
)

// Config controls the model architecture and training schedule. The zero
// value is not usable; call DefaultConfig and override fields as needed.
type Config struct {
	Input         int   // features per timestep of the history window
	EncoderHidden int   // paper: 64
	DecoderHidden int   // paper: 16
	EncoderLayers int   // paper: 2 (stacked)
	PredHidden    []int // hidden sizes of the 3-layer tanh prediction MLP
	ExtDim        int   // external feature dimension
	Horizon       int   // decoder reconstruction horizon k
	DropoutRate   float64
	MCSamples     int // T forward passes for the predictive distribution
	LR            float64
	EncoderEpochs int
	PredEpochs    int
	// FineTuneEncoder lets phase-2 gradients flow into the encoder at a
	// reduced rate instead of freezing it. On sparse spiky series the
	// reconstruction pretraining alone leaves the latent underinformative;
	// fine-tuning recovers the paper's accuracy at our smaller data scale
	// (see DESIGN.md).
	FineTuneEncoder bool
	// SpikeWeight up-weights samples with large targets during phase 2,
	// countering the zero-dominated class imbalance of sparse demand
	// series. 0 disables.
	SpikeWeight float64
	// PredictDelta regresses the difference between the target and the
	// last history count instead of the absolute value. Residual learning
	// anchors the model at the persistence forecast and lets it learn
	// corrections — disable for targets not on the count scale.
	PredictDelta bool
	// HeteroscedasticCounts models the aleatoric variance as proportional
	// to the predicted count (Poisson-like dispersion) instead of a
	// global constant, so the uncertainty headroom collapses in predicted-
	// quiet periods and widens around predicted activity.
	HeteroscedasticCounts bool
	Seed                  int64
}

// DefaultConfig returns the paper-scale architecture.
func DefaultConfig(input, extDim int) Config {
	return Config{
		Input:           input,
		EncoderHidden:   64,
		DecoderHidden:   16,
		EncoderLayers:   2,
		PredHidden:      []int{32, 16},
		ExtDim:          extDim,
		Horizon:         4,
		DropoutRate:     0.1,
		MCSamples:       20,
		LR:              0.005,
		EncoderEpochs:   30,
		PredEpochs:      60,
		FineTuneEncoder: true,
		SpikeWeight:     1,
		PredictDelta:    true,
		Seed:            1,
	}
}

// Sample is one training example: a history window of per-minute feature
// vectors, the future target values over the decoder horizon, the external
// feature vector for the next window, and the prediction target (number of
// containers needed in the next window).
type Sample struct {
	History  [][]float64
	Future   []float64
	External []float64
	Target   float64
}

// Model is the hybrid Bayesian network. Construct with New, fit with Train,
// and query with Predict.
type Model struct {
	cfg     Config
	rng     *stats.RNG
	encoder *nn.LSTMStack
	bridgeH *nn.Dense // encoder latent -> decoder initial hidden
	decoder *nn.LSTM
	decOut  *nn.Dense // decoder hidden -> scalar reconstruction
	pred    *nn.MLP

	// Target standardization fitted during Train.
	yMean, yStd float64
	// External-feature standardization fitted during Train (per dim).
	extMean, extStd []float64
	// History-count standardization (raw scale).
	histMean, histStd float64
	// residStd is the aleatoric (inherent-noise) standard deviation
	// estimated from training residuals, following Zhu & Laptev (2017):
	// the predictive uncertainty combines MC-dropout epistemic variance
	// with this residual variance.
	residStd float64
	// dispersion is the count-noise factor φ with Var ≈ φ·mean, fitted
	// from residuals when HeteroscedasticCounts is set.
	dispersion float64
	trained    bool

	// Reusable buffers for the training and inference hot loops: the
	// variational dropout masks (resampled in place, same RNG draws as
	// fresh allocation), the decoder's constant zero input rows, and the
	// prediction network's concatenated input.
	maskX, maskH []nn.DropoutMask
	zeroRow      []float64
	zeroSeq      [][]float64
	inBuf        []float64
}

// New constructs an untrained model.
func New(cfg Config) *Model {
	if cfg.Input <= 0 || cfg.EncoderHidden <= 0 || cfg.DecoderHidden <= 0 {
		panic("bayesnn: invalid config")
	}
	if cfg.MCSamples <= 0 {
		cfg.MCSamples = 1
	}
	rng := stats.NewRNG(cfg.Seed)
	m := &Model{cfg: cfg, rng: rng, yStd: 1}
	m.encoder = nn.NewLSTMStack("enc", cfg.Input, cfg.EncoderHidden, cfg.EncoderLayers, rng)
	m.bridgeH = nn.NewDense("bridge", cfg.EncoderHidden, cfg.DecoderHidden, nn.Tanh, rng)
	m.decoder = nn.NewLSTM("dec", 1, cfg.DecoderHidden, rng)
	// The decoder is fed constant zeros and its input gradient is never
	// consumed, so skip computing it.
	m.decoder.NoInputGrad = true
	m.decOut = nn.NewDense("decOut", cfg.DecoderHidden, 1, nn.Identity, rng)
	sizes := append([]int{cfg.EncoderHidden + cfg.ExtDim}, cfg.PredHidden...)
	sizes = append(sizes, 1)
	m.pred = nn.NewMLP("pred", sizes, nn.Tanh, cfg.DropoutRate, rng)
	return m
}

// Trained reports whether Train completed at least once.
func (m *Model) Trained() bool { return m.trained }

// encoderMasks samples fresh variational dropout masks, one input and one
// recurrent mask per encoder layer, reused across all timesteps of a
// sequence (Gal & Ghahramani 2016).
// The mask buffers are resampled in place (same RNG draws as allocating
// fresh masks) and stay valid until the next encode.
func (m *Model) encoderMasks() (mxs, mhs []nn.DropoutMask) {
	for len(m.maskX) < len(m.encoder.Layers) {
		m.maskX = append(m.maskX, nil)
		m.maskH = append(m.maskH, nil)
	}
	for i, l := range m.encoder.Layers {
		m.maskX[i] = nn.ResampleDropoutMask(m.maskX[i], l.In, m.cfg.DropoutRate, m.rng)
		m.maskH[i] = nn.ResampleDropoutMask(m.maskH[i], l.Hidden, m.cfg.DropoutRate, m.rng)
	}
	n := len(m.encoder.Layers)
	return m.maskX[:n], m.maskH[:n]
}

// encode runs the encoder over a (already scaled) history and returns Z.
// When train is true, variational dropout masks are applied.
func (m *Model) encode(history [][]float64, train bool) []float64 {
	var mxs, mhs []nn.DropoutMask
	if train && m.cfg.DropoutRate > 0 {
		mxs, mhs = m.encoderMasks()
	}
	m.encoder.ForwardSeq(history, mxs, mhs)
	return m.encoder.FinalHidden()
}

// Train fits the encoder-decoder (phase 1) and then the prediction network
// (phase 2) on the samples. It is safe to call again for retraining; the
// model parameters continue from their current values.
func (m *Model) Train(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	// Fit target standardization over the regression targets; history
	// counts are scaled with the same statistics, shifted to the raw mean.
	var ys, raw []float64
	for _, s := range samples {
		ys = append(ys, m.target(s))
		raw = append(raw, s.Target)
	}
	_, m.yMean, m.yStd = stats.Standardize(ys)
	_, m.histMean, m.histStd = stats.Standardize(raw)
	m.fitExtScaling(samples)

	// Histories are standardized with statistics fixed above, so the scaled
	// windows are loop-invariant across epochs: compute them once instead of
	// once per (epoch, sample).
	scaled := make([][][]float64, len(samples))
	for i, s := range samples {
		scaled[i] = m.scaleHistory(s.History)
	}

	m.trainEncoderDecoder(samples, scaled)
	m.trainPredictionNetwork(samples, scaled)
	m.estimateResidualStd(samples, scaled)
	m.trained = true
}

// estimateResidualStd measures the aleatoric noise floor as the standard
// deviation of deterministic-prediction residuals over the training set,
// plus (when enabled) the Poisson-like dispersion φ with Var ≈ φ·mean.
func (m *Model) estimateResidualStd(samples []Sample, scaled [][][]float64) {
	var sq, dispNum, dispDen float64
	n := 0
	for i, s := range samples {
		pred := m.predictDetScaled(scaled[i], s.History, s.External)
		d := s.Target - pred
		sq += d * d
		n++
		dispNum += d * d
		dispDen += math.Max(pred, 0.1)
	}
	if n > 1 {
		m.residStd = math.Sqrt(sq / float64(n))
	}
	if dispDen > 0 {
		m.dispersion = dispNum / dispDen
	}
}

// fitExtScaling computes per-dimension standardization of the external
// features; unnormalized features (e.g. recency in log-minutes) would
// saturate the prediction network's tanh units.
func (m *Model) fitExtScaling(samples []Sample) {
	if len(samples) == 0 || len(samples[0].External) == 0 {
		m.extMean, m.extStd = nil, nil
		return
	}
	d := len(samples[0].External)
	m.extMean = make([]float64, d)
	m.extStd = make([]float64, d)
	col := make([]float64, len(samples))
	for j := 0; j < d; j++ {
		for i, s := range samples {
			col[i] = s.External[j]
		}
		_, m.extMean[j], m.extStd[j] = stats.Standardize(col)
	}
}

func (m *Model) scaleExt(ext []float64) []float64 {
	if m.extMean == nil || len(ext) != len(m.extMean) {
		return ext
	}
	out := make([]float64, len(ext))
	for j, v := range ext {
		out[j] = (v - m.extMean[j]) / m.extStd[j]
	}
	return out
}

func (m *Model) scaleY(y float64) float64   { return (y - m.yMean) / m.yStd }
func (m *Model) unscaleY(y float64) float64 { return y*m.yStd + m.yMean }

// lastCount returns the final history step's count channel (raw units).
func lastCount(history [][]float64) float64 {
	if len(history) == 0 || len(history[len(history)-1]) == 0 {
		return 0
	}
	return history[len(history)-1][0]
}

// target converts a sample's absolute target to the regression target
// (delta from the persistence forecast when PredictDelta is set).
func (m *Model) target(s Sample) float64 {
	if m.cfg.PredictDelta {
		return s.Target - lastCount(s.History)
	}
	return s.Target
}

// scaleHistory standardizes the count channel (feature 0) of a history
// window with the raw-count statistics, leaving other channels as-is.
func (m *Model) scaleHistory(history [][]float64) [][]float64 {
	std := m.histStd
	if std == 0 {
		std = 1
	}
	out := make([][]float64, len(history))
	for t, row := range history {
		r := append([]float64(nil), row...)
		if len(r) > 0 {
			r[0] = (r[0] - m.histMean) / std
		}
		out[t] = r
	}
	return out
}

// trainEncoderDecoder pretrains the autoencoder: encoder consumes the
// history; the decoder, initialized from a learned bridge of Z,
// autoregressively reconstructs the next Horizon target values with
// teacher forcing.
// zeroInputs returns k rows of the shared all-zero decoder input. All rows
// alias one buffer; the decoder only reads them.
func (m *Model) zeroInputs(k int) [][]float64 {
	if m.zeroRow == nil {
		m.zeroRow = []float64{0}
	}
	for len(m.zeroSeq) < k {
		m.zeroSeq = append(m.zeroSeq, m.zeroRow)
	}
	return m.zeroSeq[:k]
}

// concatInto writes a ⊕ b into the model's reusable input buffer, valid
// until the next concatInto call.
func (m *Model) concatInto(a, b []float64) []float64 {
	n := len(a) + len(b)
	if cap(m.inBuf) < n {
		m.inBuf = make([]float64, n)
	}
	buf := m.inBuf[:n]
	copy(buf, a)
	copy(buf[len(a):], b)
	return buf
}

func (m *Model) trainEncoderDecoder(samples []Sample, scaled [][][]float64) {
	params := append(m.encoder.Params(), m.bridgeH.Params()...)
	params = append(params, m.decoder.Params()...)
	params = append(params, m.decOut.Params()...)
	opt := nn.NewAdam(m.cfg.LR, params)

	std := m.histStd
	if std == 0 {
		std = 1
	}
	tgt := []float64{0}
	var dhs [][]float64
	for epoch := 0; epoch < m.cfg.EncoderEpochs; epoch++ {
		order := m.rng.Perm(len(samples))
		for _, idx := range order {
			s := samples[idx]
			if len(s.Future) == 0 {
				continue
			}
			z := m.encode(scaled[idx], true)
			h0 := m.bridgeH.Forward(z)

			// Decoder inputs are zeros: the reconstruction must flow
			// entirely through the latent bridge, otherwise teacher
			// forcing lets the decoder shortcut into an autoregressive
			// copy and the encoder receives no training signal.
			k := len(s.Future)
			if k > m.cfg.Horizon {
				k = m.cfg.Horizon
			}
			hs := m.decoder.ForwardSeq(m.zeroInputs(k), h0, nil, nil, nil)

			// Per-step output loss (raw-count scale).
			if cap(dhs) < k {
				dhs = make([][]float64, k)
			}
			dhs = dhs[:k]
			for t := 0; t < k; t++ {
				pred := m.decOut.Forward(hs[t])
				tgt[0] = (s.Future[t] - m.histMean) / std
				_, g := nn.MSELoss(pred, tgt)
				dhs[t] = m.decOut.Backward(g)
			}
			_, dh0, _ := m.decoder.BackwardSeq(dhs, nil, nil)
			dz := m.bridgeH.Backward(dh0)
			m.encoder.BackwardSeq(nil, dz, nil)
			opt.Step(1)
		}
	}
}

// trainPredictionNetwork trains the MLP on Z ⊕ external features → target,
// with the encoder frozen (used as a feature-extraction black box, per the
// paper) but with variational dropout still active so the prediction network
// learns under the same stochasticity used at inference time.
func (m *Model) trainPredictionNetwork(samples []Sample, scaled [][][]float64) {
	params := m.pred.Params()
	var encOpt *nn.Adam
	if m.cfg.FineTuneEncoder {
		encOpt = nn.NewAdam(m.cfg.LR, m.encoder.Params())
	}
	opt := nn.NewAdam(m.cfg.LR, params)
	m.pred.Train = true
	// Precompute sample weights against zero-dominated imbalance, plus the
	// loop-invariant scaled externals and regression targets.
	weights := make([]float64, len(samples))
	exts := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		weights[i] = 1
		ys[i] = m.scaleY(m.target(s))
		exts[i] = m.scaleExt(s.External)
		if m.cfg.SpikeWeight > 0 {
			weights[i] += m.cfg.SpikeWeight * math.Abs(ys[i])
		}
	}
	tgt := []float64{0}
	for epoch := 0; epoch < m.cfg.PredEpochs; epoch++ {
		order := m.rng.Perm(len(samples))
		for _, idx := range order {
			z := m.encode(scaled[idx], true)
			in := m.concatInto(z, exts[idx])
			pred := m.pred.Forward(in)
			tgt[0] = ys[idx]
			_, g := nn.MSELoss(pred, tgt)
			for j := range g {
				g[j] *= weights[idx]
			}
			dIn := m.pred.Backward(g)
			opt.Step(1)
			if encOpt != nil {
				dz := dIn[:len(z)]
				m.encoder.BackwardSeq(nil, dz, nil)
				encOpt.Step(1)
			}
		}
	}
}

// Prediction is a predictive distribution from MC dropout.
type Prediction struct {
	Mean float64
	Std  float64 // epistemic uncertainty from the T stochastic passes
}

// UpperBound returns mean + z*std, the pool manager's conservative sizing
// target.
func (p Prediction) UpperBound(z float64) float64 { return p.Mean + z*p.Std }

// Predict returns the predictive mean and uncertainty for the next window
// given a history and external features, using MCSamples stochastic forward
// passes with dropout active (MC dropout approximate Bayesian inference).
func (m *Model) Predict(history [][]float64, external []float64) Prediction {
	scaled := m.scaleHistory(history)
	m.pred.Train = m.cfg.DropoutRate > 0
	T := m.cfg.MCSamples
	if m.cfg.DropoutRate == 0 {
		T = 1
	}
	ext := m.scaleExt(external)
	base := 0.0
	if m.cfg.PredictDelta {
		base = lastCount(history)
	}
	outs := make([]float64, T)
	for t := 0; t < T; t++ {
		z := m.encode(scaled, m.cfg.DropoutRate > 0)
		y := m.pred.Forward(m.concatInto(z, ext))[0]
		outs[t] = base + m.unscaleY(y)
	}
	mean := stats.Mean(outs)
	epistemic := stats.Variance(outs)
	// Total predictive std: epistemic (MC dropout) + aleatoric. The
	// aleatoric term is either a global residual variance or, for count
	// targets, a dispersion term proportional to the predicted mean so
	// quiet periods carry little headroom.
	aleatoric := m.residStd * m.residStd
	if m.cfg.HeteroscedasticCounts {
		// Count-dispersion variance, floored at a quarter of the global
		// residual variance so imminent-but-unpredicted activity retains
		// some headroom.
		floor := 0.25 * m.residStd * m.residStd
		aleatoric = math.Max(m.dispersion*math.Max(mean, 0), floor)
	}
	std := math.Sqrt(epistemic + aleatoric)
	return Prediction{Mean: mean, Std: std}
}

// PredictDeterministic runs a single pass with dropout disabled; this is
// the "AquaLite" ablation from the paper's Fig. 11 (no uncertainty
// estimation).
func (m *Model) PredictDeterministic(history [][]float64, external []float64) float64 {
	return m.predictDetScaled(m.scaleHistory(history), history, external)
}

// predictDetScaled is PredictDeterministic over an already-scaled history;
// the raw history is still needed for the persistence-forecast base.
func (m *Model) predictDetScaled(scaled [][]float64, history [][]float64, external []float64) float64 {
	m.pred.Train = false
	z := m.encode(scaled, false)
	y := m.pred.Forward(m.concatInto(z, m.scaleExt(external)))[0]
	base := 0.0
	if m.cfg.PredictDelta {
		base = lastCount(history)
	}
	return base + m.unscaleY(y)
}

// PredictSeries applies Predict over a sliding window on a full series,
// returning aligned predictions for indices [window, len(series)).
// extFn supplies external features for target index i.
func (m *Model) PredictSeries(series []float64, window int, featFn func(i int) []float64, extFn func(i int) []float64) []Prediction {
	var out []Prediction
	for i := window; i < len(series); i++ {
		hist := make([][]float64, window)
		for t := 0; t < window; t++ {
			idx := i - window + t
			hist[t] = append([]float64{series[idx]}, featFn(idx)...)
		}
		out = append(out, m.Predict(hist, extFn(i)))
	}
	return out
}

// BuildSamples converts a scalar series into supervised samples with the
// given history window and decoder horizon. featFn provides per-timestep
// auxiliary features appended after the count channel; extFn provides the
// external feature vector for the prediction target index.
func BuildSamples(series []float64, window, horizon int, featFn func(i int) []float64, extFn func(i int) []float64) []Sample {
	var samples []Sample
	for i := window; i+horizon <= len(series); i++ {
		hist := make([][]float64, window)
		for t := 0; t < window; t++ {
			idx := i - window + t
			hist[t] = append([]float64{series[idx]}, featFn(idx)...)
		}
		fut := append([]float64(nil), series[i:i+horizon]...)
		samples = append(samples, Sample{
			History:  hist,
			Future:   fut,
			External: extFn(i),
			Target:   series[i],
		})
	}
	return samples
}

// Uncertainty calibration helper: fraction of actuals falling inside the
// mean ± z*std predictive interval.
func Coverage(preds []Prediction, actual []float64, z float64) float64 {
	n := len(preds)
	if len(actual) < n {
		n = len(actual)
	}
	if n == 0 {
		return 0
	}
	in := 0
	for i := 0; i < n; i++ {
		lo := preds[i].Mean - z*preds[i].Std
		hi := preds[i].Mean + z*preds[i].Std
		if actual[i] >= lo && actual[i] <= hi {
			in++
		}
	}
	return float64(in) / float64(n)
}
