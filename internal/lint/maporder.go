package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag map iterations whose order escapes: float accumulation, " +
		"appends that are never sorted, and telemetry/output emission " +
		"inside a for-range over a map",
	NeedsTypes: true,
	Run:        runMapOrder,
}

// defaultSinks are the packages whose calls count as order-sensitive
// emission when made inside a map iteration: spans/metrics must arrive in
// a deterministic order for byte-identical dumps, and printed output must
// not depend on map order.
var defaultSinks = []string{"aquatope/internal/telemetry", "fmt"}

func runMapOrder(prog *Program, pkg *Package, file *File, rule Rule, report Reporter) {
	sinks := rule.Sinks
	if len(sinks) == 0 {
		sinks = defaultSinks
	}
	info := pkg.Info
	var stack []ast.Node
	ast.Inspect(file.AST, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if rs, ok := n.(*ast.RangeStmt); ok && isMapType(info, rs.X) {
			checkMapRange(info, rs, enclosingFuncBody(stack), sinks, report)
		}
		stack = append(stack, n)
		return true
	})
}

func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncBody returns the body of the innermost function literal or
// declaration on the traversal stack (nil at file scope).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

func checkMapRange(info *types.Info, rs *ast.RangeStmt, encl *ast.BlockStmt, sinks []string, report Reporter) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAccumulation(info, rs, st, report)
			checkAppendEscape(info, rs, st, encl, report)
		case *ast.ExprStmt:
			// Emission is a call in statement position (hist.Observe,
			// fmt.Printf). A call whose result feeds an expression is a
			// read, not an emission.
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				checkSinkEmission(info, call, sinks, report)
			}
		case *ast.DeferStmt:
			checkSinkEmission(info, st.Call, sinks, report)
		case *ast.GoStmt:
			checkSinkEmission(info, st.Call, sinks, report)
		}
		return true
	})
}

// rangeVarObjects returns the objects bound to the range statement's key
// and value variables.
func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) []types.Object {
	var objs []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs = append(objs, obj)
		} else if obj := info.Uses[id]; obj != nil {
			objs = append(objs, obj)
		}
	}
	return objs
}

// perKeyTarget reports whether the assignment target is indexed by one of
// the loop's range variables (m[k] op= v, out[k] = append(out[k], x)):
// each iteration then touches its own cell, which is order-independent.
func perKeyTarget(info *types.Info, rs *ast.RangeStmt, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	for _, obj := range rangeVarObjects(info, rs) {
		if usesObject(info, idx.Index, obj) {
			return true
		}
	}
	return false
}

// checkAccumulation flags `sum += v` (and `sum = sum + v`) where sum is a
// float declared outside the loop: float addition is not associative, so
// the total depends on map iteration order.
func checkAccumulation(info *types.Info, rs *ast.RangeStmt, st *ast.AssignStmt, report Reporter) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return
	}
	lhs := st.Lhs[0]
	if !isFloat(info.TypeOf(lhs)) {
		return
	}
	obj := lhsObject(info, lhs)
	if obj == nil || !declaredOutside(obj, rs) || perKeyTarget(info, rs, lhs) {
		return
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		report(st.Pos(), "float accumulation into %s across an unordered map iteration is order-dependent; iterate over sorted keys", objName(obj, lhs))
	case token.ASSIGN:
		if usesObject(info, st.Rhs[0], obj) {
			report(st.Pos(), "float accumulation into %s across an unordered map iteration is order-dependent; iterate over sorted keys", objName(obj, lhs))
		}
	}
}

// checkAppendEscape flags `xs = append(xs, ...)` where xs is declared
// outside the loop and is never passed to sort/slices afterwards in the
// enclosing function: the slice's element order is the map's iteration
// order, which escapes the loop.
func checkAppendEscape(info *types.Info, rs *ast.RangeStmt, st *ast.AssignStmt, encl *ast.BlockStmt, report Reporter) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" {
			continue
		}
		obj := lhsObject(info, st.Lhs[i])
		if obj == nil || !declaredOutside(obj, rs) || perKeyTarget(info, rs, st.Lhs[i]) {
			continue
		}
		if sortedAfter(info, obj, rs, encl) {
			continue
		}
		report(st.Pos(), "append to %s inside an unordered map iteration lets map order escape; sort the slice afterwards or iterate over sorted keys", objName(obj, st.Lhs[i]))
	}
}

// sortedAfter reports whether obj is passed to a sort or slices call after
// the range statement within the enclosing function body — the canonical
// collect-then-sort idiom, which is deterministic.
func sortedAfter(info *types.Info, obj types.Object, rs *ast.RangeStmt, encl *ast.BlockStmt) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || (pkgID.Name != "sort" && pkgID.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkSinkEmission flags calls into sink packages (telemetry, fmt's
// print family) made inside the loop: spans, metric observations and
// printed rows would be emitted in map order.
func checkSinkEmission(info *types.Info, call *ast.CallExpr, sinks []string, report Reporter) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	path, name := calleePackage(info, sel)
	if path == "" {
		return
	}
	// Only fmt's printing functions emit; Sprintf and friends are pure.
	if path == "fmt" && !strings.HasPrefix(name, "Print") && !strings.HasPrefix(name, "Fprint") {
		return
	}
	for _, s := range sinks {
		if matchGlob(s, path) {
			report(call.Pos(), "%s.%s called inside an unordered map iteration emits in map order; iterate over sorted keys", shortPkg(path), name)
			return
		}
	}
}

// calleePackage resolves the package path and name of a selector call:
// either a package-level function (fmt.Println) or a method whose
// receiver type is declared in that package (hist.Observe).
func calleePackage(info *types.Info, sel *ast.SelectorExpr) (path, name string) {
	if s, ok := info.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path(), s.Obj().Name()
		}
		return "", ""
	}
	if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
		if _, ok := obj.(*types.Func); ok {
			return obj.Pkg().Path(), obj.Name()
		}
	}
	return "", ""
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// lhsObject resolves the variable object at the root of an assignment
// target (sum, s.total, xs[i] -> xs).
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredOutside reports whether obj is declared outside the range
// statement (package scope counts as outside).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func objName(obj types.Object, e ast.Expr) string {
	if obj != nil {
		return obj.Name()
	}
	return types.ExprString(e)
}
