package telemetry

import (
	"bytes"

	"aquatope/internal/checkpoint"
)

// SnapshotTo serializes the registry as its canonical JSON export (map keys
// sorted by encoding/json, so equal state yields equal bytes). Telemetry is
// replay-derived state: the restorer re-derives counters by re-running the
// input stream and byte-compares this section to prove the rebuilt registry
// matches the checkpointed one. (Named SnapshotTo because Snapshot is the
// registry's long-standing JSON export API.)
func (r *Registry) SnapshotTo(enc *checkpoint.Encoder) {
	enc.String("telemetry.registry")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		// The JSON encoder cannot fail on Snapshot's map/float payload;
		// record the error text defensively so a mismatch surfaces.
		enc.String("error: " + err.Error())
		return
	}
	enc.Blob(buf.Bytes())
}

// SnapshotTo serializes the collected spans as the canonical JSONL dump —
// exactly the bytes the exit-path trace dump would produce at this instant.
// Like the registry, spans are replay-derived and verified by byte
// comparison on restore.
func (c *Collector) SnapshotTo(enc *checkpoint.Encoder) {
	enc.String("telemetry.spans")
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		enc.String("error: " + err.Error())
		return
	}
	enc.Blob(buf.Bytes())
}
