package qmc

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

func TestFirstDimensionIsVanDerCorput(t *testing.T) {
	s := NewSobol(1)
	want := []float64{0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125}
	for i, w := range want {
		got := s.Next()[0]
		if math.Abs(got-w) > 1e-12 {
			t.Fatalf("point %d = %v, want %v", i, got, w)
		}
	}
}

func TestPointsInUnitCube(t *testing.T) {
	s := NewSobol(8)
	for i := 0; i < 1000; i++ {
		p := s.Next()
		if len(p) != 8 {
			t.Fatalf("dim = %d", len(p))
		}
		for _, x := range p {
			if x < 0 || x >= 1 {
				t.Fatalf("coordinate out of [0,1): %v", x)
			}
		}
	}
}

func TestDimensionBounds(t *testing.T) {
	for _, d := range []int{0, MaxDim + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dim %d should panic", d)
				}
			}()
			NewSobol(d)
		}()
	}
	NewSobol(MaxDim) // must not panic
}

func TestUniformMeanPerDimension(t *testing.T) {
	s := NewSobol(6)
	n := 4096
	sums := make([]float64, 6)
	for i := 0; i < n; i++ {
		p := s.Next()
		for j, x := range p {
			sums[j] += x
		}
	}
	for j, sum := range sums {
		mean := sum / float64(n)
		if math.Abs(mean-0.5) > 0.01 {
			t.Fatalf("dim %d mean = %v, want ~0.5", j, mean)
		}
	}
}

func TestLowerDiscrepancyThanRandom(t *testing.T) {
	n, d := 512, 4
	sob := NewSobol(d).Sample(n)
	g := stats.NewRNG(9)
	rnd := make([][]float64, n)
	for i := range rnd {
		rnd[i] = make([]float64, d)
		for j := range rnd[i] {
			rnd[i][j] = g.Float64()
		}
	}
	ds, dr := Discrepancy2(sob), Discrepancy2(rnd)
	if ds >= dr {
		t.Fatalf("Sobol discrepancy %v not lower than random %v", ds, dr)
	}
}

func TestScrambledStaysUniform(t *testing.T) {
	g := stats.NewRNG(10)
	s := NewScrambledSobol(4, g)
	n := 4096
	sums := make([]float64, 4)
	for i := 0; i < n; i++ {
		p := s.Next()
		for j, x := range p {
			if x < 0 || x >= 1 {
				t.Fatalf("scrambled coordinate out of range: %v", x)
			}
			sums[j] += x
		}
	}
	for j, sum := range sums {
		if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
			t.Fatalf("scrambled dim %d mean = %v", j, mean)
		}
	}
}

func TestScramblesDiffer(t *testing.T) {
	a := NewScrambledSobol(3, stats.NewRNG(1))
	b := NewScrambledSobol(3, stats.NewRNG(2))
	pa, pb := a.Next(), b.Next()
	same := true
	for i := range pa {
		if pa[i] != pb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical scrambled points")
	}
}

func TestNormalSampleMoments(t *testing.T) {
	s := NewSobol(2)
	pts := s.NormalSample(4096)
	var sum, sumSq float64
	for _, p := range pts {
		for _, x := range p {
			sum += x
			sumSq += x * x
		}
	}
	n := float64(len(pts) * 2)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestQMCIntegrationBeatsMC(t *testing.T) {
	// Integrate f(x) = prod_i x_i over [0,1]^3; exact value 1/8.
	integrand := func(p []float64) float64 {
		v := 1.0
		for _, x := range p {
			v *= x
		}
		return v
	}
	n := 1024
	s := NewSobol(3)
	var qmcSum float64
	for i := 0; i < n; i++ {
		qmcSum += integrand(s.Next())
	}
	qmcErr := math.Abs(qmcSum/float64(n) - 0.125)

	g := stats.NewRNG(77)
	var mcSum float64
	for i := 0; i < n; i++ {
		p := []float64{g.Float64(), g.Float64(), g.Float64()}
		mcSum += integrand(p)
	}
	mcErr := math.Abs(mcSum/float64(n) - 0.125)
	if qmcErr > mcErr {
		t.Fatalf("QMC error %v worse than MC error %v", qmcErr, mcErr)
	}
	if qmcErr > 1e-3 {
		t.Fatalf("QMC error too large: %v", qmcErr)
	}
}

func TestDiscrepancyEmpty(t *testing.T) {
	if Discrepancy2(nil) != 0 {
		t.Fatal("empty set should have 0 discrepancy")
	}
}
