// Package socialgraph builds a synthetic stand-in for the socfb-Reed98
// Facebook network (962 users, 18.8K follow edges) that drives the social
// network workload's fan-out in the paper (§7.1). A Barabási-Albert
// preferential-attachment process reproduces the heavy-tailed follower
// distribution that makes post-broadcast widths so variable.
package socialgraph

import (
	"sort"

	"aquatope/internal/stats"
)

// Graph is an undirected follow graph (like the Facebook dataset, follower
// relationships are mutual).
type Graph struct {
	adj [][]int
}

// Reed98Like returns a synthetic graph with the same scale as
// socfb-Reed98: 962 users and ≈18.8K edges.
func Reed98Like(seed int64) *Graph {
	return Generate(962, 20, seed)
}

// Generate builds a preferential-attachment graph with n nodes, each new
// node attaching m edges to existing nodes proportionally to their degree.
func Generate(n, m int, seed int64) *Graph {
	if n < 2 {
		n = 2
	}
	if m < 1 {
		m = 1
	}
	rng := stats.NewRNG(seed)
	g := &Graph{adj: make([][]int, n)}
	// Repeated-node list for degree-proportional sampling.
	var chooser []int
	// Seed clique of m+1 nodes.
	seedN := m + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			g.addEdge(i, j)
			chooser = append(chooser, i, j)
		}
	}
	for v := seedN; v < n; v++ {
		attached := make(map[int]bool)
		for len(attached) < m && len(attached) < v {
			u := chooser[rng.Intn(len(chooser))]
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
		}
		// Sort for determinism: map iteration order would otherwise leak
		// into the preferential-attachment sampling.
		us := make([]int, 0, len(attached))
		for u := range attached {
			us = append(us, u)
		}
		sort.Ints(us)
		for _, u := range us {
			g.addEdge(v, u)
			chooser = append(chooser, v, u)
		}
	}
	return g
}

func (g *Graph) addEdge(a, b int) {
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// NumUsers returns the node count.
func (g *Graph) NumUsers() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int {
	var s int
	for _, nbrs := range g.adj {
		s += len(nbrs)
	}
	return s / 2
}

// Followers returns the follower count of a user.
func (g *Graph) Followers(user int) int {
	if user < 0 || user >= len(g.adj) {
		return 0
	}
	return len(g.adj[user])
}

// Neighbors returns the adjacency list of a user (shared slice; do not
// modify).
func (g *Graph) Neighbors(user int) []int {
	if user < 0 || user >= len(g.adj) {
		return nil
	}
	return g.adj[user]
}

// SampleUser returns a uniformly random user.
func (g *Graph) SampleUser(rng *stats.RNG) int { return rng.Intn(len(g.adj)) }

// MaxDegree returns the largest follower count.
func (g *Graph) MaxDegree() int {
	best := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > best {
			best = len(nbrs)
		}
	}
	return best
}

// MeanDegree returns the average follower count.
func (g *Graph) MeanDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(len(g.adj))
}
