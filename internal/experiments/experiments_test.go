package experiments

import (
	"math"
	"strings"
	"testing"
)

// tiny keeps CI fast; validity-scale runs live in cmd/aquabench.
var tiny = Scale{TraceMin: 480, TrainMin: 300, Ensemble: 2, Repeats: 1, SearchBudget: 12, ModelEpochs: 3, Seed: 2}

func TestTable1Shape(t *testing.T) {
	r := Table1(tiny)
	if len(r.Order) != 5 { // keepalive, arima, holtwinters, lstm, aquatope
		t.Fatalf("order = %v", r.Order)
	}
	for _, name := range r.Order {
		v := r.SMAPE[name]
		if v < 0 || v > 200 || math.IsNaN(v) {
			t.Fatalf("%s SMAPE out of range: %v", name, v)
		}
	}
	if !strings.Contains(r.Table(), "SMAPE") {
		t.Fatal("table missing header")
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(tiny)
	if len(r.Order) != 6 {
		t.Fatalf("policies = %v", r.Order)
	}
	for _, name := range r.Order {
		if r.ColdRate[name] < 0 || r.ColdRate[name] > 1 {
			t.Fatalf("%s cold rate %v", name, r.ColdRate[name])
		}
		if r.MemGBs[name] < 0 {
			t.Fatalf("%s memory negative", name)
		}
	}
	if r.RelMemPct["keepalive"] != 100 {
		t.Fatalf("keepalive should be the 100%% baseline, got %v", r.RelMemPct["keepalive"])
	}
}

func TestFig10Shape(t *testing.T) {
	r := Fig10(tiny)
	if len(r.CVs) != 5 || len(r.IceBrk) != 5 || len(r.Aquatope) != 5 {
		t.Fatal("cv sweep size wrong")
	}
	// CVs should be increasing by construction.
	for i := 1; i < len(r.CVs); i++ {
		if r.CVs[i] <= r.CVs[i-1]-0.2 {
			t.Fatalf("CV sweep not increasing: %v", r.CVs)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(tiny)
	if len(r.ActualGB) == 0 || len(r.ActualGB) != len(r.AquatopeGB) || len(r.ActualGB) != len(r.AquaLiteGB) {
		t.Fatal("series misaligned")
	}
	if !strings.Contains(r.Table(), "AquatopeGB") {
		t.Fatal("table missing series")
	}
}

func TestFig12Shape(t *testing.T) {
	s := tiny
	r := Fig12(s)
	if len(r.Apps) != 5 {
		t.Fatalf("apps = %v", r.Apps)
	}
	for _, app := range r.Apps {
		for mgr, curve := range r.Curves[app] {
			if len(curve) != len(r.Budgets) {
				t.Fatalf("%s/%s curve truncated", app, mgr)
			}
			// Running-best curves never increase.
			for i := 1; i < len(curve); i++ {
				if !math.IsInf(curve[i-1], 1) && curve[i] > curve[i-1]+1e-9 {
					t.Fatalf("%s/%s curve increased: %v", app, mgr, curve)
				}
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(tiny)
	for _, app := range r.Apps {
		for mgr, v := range r.CPUPct[app] {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%s/%s cpu%%: %v", app, mgr, v)
			}
		}
	}
}

func TestFig14Shape(t *testing.T) {
	a := Fig14a(tiny)
	if len(a.Labels) != 3 {
		t.Fatalf("14a labels = %v", a.Labels)
	}
	b := Fig14b(tiny)
	if len(b.Labels) != 3 {
		t.Fatalf("14b labels = %v", b.Labels)
	}
}

func TestFig15Shape(t *testing.T) {
	r := Fig15(tiny)
	if len(r.Levels) != 5 {
		t.Fatalf("levels = %v", r.Levels)
	}
}

func TestFig16Shape(t *testing.T) {
	r := Fig16(tiny)
	if len(r.Performance) == 0 {
		t.Fatal("no trajectory")
	}
	if len(r.ChangePoints) != 1 {
		t.Fatalf("change points = %v", r.ChangePoints)
	}
	for _, p := range r.Performance {
		if p < 0 || p > 100 {
			t.Fatalf("performance out of range: %v", p)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	r := Fig17(tiny)
	if r.FullCPU <= 0 || r.RMOnlyCPU <= 0 {
		t.Fatalf("cpu times: %+v", r)
	}
}

func TestFig18Shape(t *testing.T) {
	r := Fig18(tiny)
	if len(r.Order) != 3 {
		t.Fatal("framework lineup wrong")
	}
	for _, name := range r.Order {
		if r.Violation[name] < 0 || r.Violation[name] > 1 {
			t.Fatalf("%s violation %v", name, r.Violation[name])
		}
		if r.CPUTime[name] <= 0 {
			t.Fatalf("%s cpu time %v", name, r.CPUTime[name])
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := formatTable([]string{"A", "LongHeader"}, [][]string{{"xx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A ") {
		t.Fatalf("header wrong: %q", lines[0])
	}
}

func TestEnsembleTraceDeterminism(t *testing.T) {
	a := ensembleTrace(3, 480, 9)
	b := ensembleTrace(3, 480, 9)
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatal("ensemble trace not deterministic")
	}
	if len(ensembleTrace(4, 480, 9).Arrivals) == len(a.Arrivals) {
		// Extremely unlikely unless generation ignores the index.
		t.Log("warning: adjacent ensemble members have equal arrival counts")
	}
}

func TestRecoverySamples(t *testing.T) {
	r := Fig16Result{Performance: []float64{90, 90, 20, 40, 85}, ChangePoints: []int{2}}
	if got := r.RecoverySamples(80); got != 2 {
		t.Fatalf("recovery = %d, want 2", got)
	}
	if got := r.RecoverySamples(99); got != -1 {
		t.Fatalf("unreached threshold should be -1, got %d", got)
	}
}
