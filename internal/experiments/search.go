package experiments

import (
	"fmt"
	"math"

	"aquatope/internal/apps"
	"aquatope/internal/faas"
	"aquatope/internal/resource"
	"aquatope/internal/stats"
)

// evalApps returns the five evaluation applications.
func evalApps(seed int64) []*apps.App { return apps.All(seed) }

// profileNoise is the default platform noise during configuration search.
var profileNoise = faas.Noise{GaussianStd: 0.15, OutlierRate: 0.02, OutlierScale: 3}

// managerFactories is the Fig. 12/13 lineup.
func managerFactories() map[string]func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
	return map[string]func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager{
		"random": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewRandom(sp, p, q, seed)
		},
		"autoscale": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewAutoscale(sp, p, q, seed)
		},
		"clite": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewCLITE(sp, p, q, seed)
		},
		"aquatope": func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager {
			return resource.NewAquatope(sp, p, q, seed)
		},
	}
}

var managerOrder = []string{"random", "autoscale", "clite", "aquatope"}

// evalTrue re-evaluates a chosen configuration noiselessly and reports
// whether it truly meets QoS — the managers' own feasibility judgements
// are made under noise, so a "best feasible" pick can violate in truth.
func evalTrue(prof *resource.Profiler, cfg map[string]faas.ResourceConfig, qos float64) (cost float64, feasible bool) {
	cpu, mem, lat := prof.SampleNoiselessComponents(cfg, 3)
	return prof.CPUWeight*cpu + prof.MemWeight*mem, lat <= qos
}

// solveOracle returns the oracle's cost components for an app.
func solveOracle(a *apps.App, seed int64) (cfg map[string]faas.ResourceConfig, cost, cpu, mem float64, ok bool) {
	space := resource.NewSpace(a)
	prof := resource.NewProfiler(a, seed)
	or := resource.NewOracle(space, prof, a.QoS, seed)
	or.MaxGrid = 1 // coordinate descent: tractable on every app
	or.Repeats = 3
	cfg, cost, ok = or.Solve()
	if !ok {
		return nil, 0, 0, 0, false
	}
	cpu, mem, _ = prof.SampleNoiselessComponents(cfg, 4)
	return cfg, cost, cpu, mem, true
}

// ---------------------------------------------------------------------------

// Fig12Result holds the cost-vs-budget convergence curves per app and
// manager, normalized to the oracle cost (values ≥ 1).
type Fig12Result struct {
	Apps     []string
	Budgets  []int                           // sample counts at measurement points
	Curves   map[string]map[string][]float64 // app -> manager -> % oracle per budget point
	OracleAt map[string]float64
}

// Table renders one block per app.
func (r Fig12Result) Table() string {
	var out string
	for _, app := range r.Apps {
		rows := [][]string{}
		for _, m := range managerOrder {
			row := []string{m}
			for _, v := range r.Curves[app][m] {
				row = append(row, f0(v*100)+"%")
			}
			rows = append(rows, row)
		}
		header := []string{app + " @samples"}
		for _, b := range r.Budgets {
			header = append(header, fmt.Sprintf("%d", b))
		}
		out += formatTable(header, rows) + "\n"
	}
	return out
}

// Fig12 measures convergence: best-feasible cost (noiselessly re-evaluated)
// as the search budget grows, for each workflow and manager.
func Fig12(s Scale) Fig12Result {
	res := Fig12Result{
		Curves:   make(map[string]map[string][]float64),
		OracleAt: make(map[string]float64),
	}
	budget := s.SearchBudget
	checkpoints := []int{budget / 5, 2 * budget / 5, 3 * budget / 5, 4 * budget / 5, budget}
	res.Budgets = checkpoints
	for _, a := range evalApps(s.Seed) {
		res.Apps = append(res.Apps, a.Name)
		_, oracleCost, _, _, ok := solveOracle(a, s.Seed)
		if !ok {
			continue
		}
		res.OracleAt[a.Name] = oracleCost
		res.Curves[a.Name] = make(map[string][]float64)
		evalProf := resource.NewProfiler(a, s.Seed+500)
		for name, mk := range managerFactories() {
			curves := make([][]float64, 0, s.Repeats)
			for rep := 0; rep < s.Repeats; rep++ {
				seed := s.Seed + int64(rep)*37
				prof := resource.NewProfiler(a, seed)
				prof.Noise = profileNoise
				m := mk(resource.NewSpace(a), prof, a.QoS, seed)
				curve := make([]float64, len(checkpoints))
				ci := 0
				bestTrue := math.Inf(1)
				lastEvaluated := ""
				for m.Samples() < budget && ci < len(checkpoints) {
					if m.Step() == 0 {
						break
					}
					for ci < len(checkpoints) && m.Samples() >= checkpoints[ci] {
						if cfg, _, ok := m.Best(); ok {
							key := fmt.Sprint(cfg)
							if key != lastEvaluated {
								// Count only configurations that truly
								// meet QoS when re-measured noiselessly.
								if c, feasible := evalTrue(evalProf, cfg, a.QoS); feasible && c < bestTrue {
									bestTrue = c
								}
								lastEvaluated = key
							}
						}
						curve[ci] = bestTrue / oracleCost
						ci++
					}
				}
				for ; ci < len(checkpoints); ci++ {
					curve[ci] = bestTrue / oracleCost
				}
				curves = append(curves, curve)
			}
			// Mean across repetitions, ignoring infinities (no feasible yet).
			agg := make([]float64, len(checkpoints))
			for i := range agg {
				var sum float64
				var n int
				for _, c := range curves {
					if !math.IsInf(c[i], 1) && c[i] > 0 {
						sum += c[i]
						n++
					}
				}
				if n > 0 {
					agg[i] = sum / float64(n)
				} else {
					agg[i] = math.Inf(1)
				}
			}
			res.Curves[a.Name][name] = agg
		}
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig13Result reports final CPU-time and memory-time (relative to the
// oracle) per app and manager.
type Fig13Result struct {
	Apps []string
	// CPUPct/MemPct: app -> manager -> %-of-oracle.
	CPUPct, MemPct map[string]map[string]float64
	ViolationRate  map[string]map[string]float64
}

// Table renders the two panels.
func (r Fig13Result) Table() string {
	var out string
	for _, metric := range []struct {
		name string
		m    map[string]map[string]float64
	}{{"CPU time (% oracle)", r.CPUPct}, {"Memory time (% oracle)", r.MemPct}} {
		rows := [][]string{}
		for _, app := range r.Apps {
			row := []string{app}
			for _, mgr := range managerOrder {
				v := metric.m[app][mgr]
				if v == 0 {
					// No repetition of this manager produced a truly
					// QoS-feasible configuration.
					row = append(row, "n/a")
					continue
				}
				row = append(row, f0(v)+"%")
			}
			rows = append(rows, row)
		}
		out += metric.name + "\n" + formatTable(append([]string{"App"}, managerOrder...), rows) + "\n"
	}
	return out
}

// Fig13 runs every manager to the full budget on every app (Repeats times)
// and reports the chosen configuration's noiseless CPU/memory time
// relative to the oracle. For random search, the best of all repetitions
// is used, per the paper's methodology.
func Fig13(s Scale) Fig13Result {
	res := Fig13Result{
		CPUPct:        make(map[string]map[string]float64),
		MemPct:        make(map[string]map[string]float64),
		ViolationRate: make(map[string]map[string]float64),
	}
	for _, a := range evalApps(s.Seed) {
		res.Apps = append(res.Apps, a.Name)
		_, _, oCPU, oMem, ok := solveOracle(a, s.Seed)
		if !ok {
			continue
		}
		res.CPUPct[a.Name] = make(map[string]float64)
		res.MemPct[a.Name] = make(map[string]float64)
		res.ViolationRate[a.Name] = make(map[string]float64)
		evalProf := resource.NewProfiler(a, s.Seed+500)
		for name, mk := range managerFactories() {
			var cpus, mems []float64
			viol := 0
			bestRandomCost := math.Inf(1)
			var bestRandom map[string]faas.ResourceConfig
			for rep := 0; rep < s.Repeats; rep++ {
				seed := s.Seed + int64(rep)*61
				prof := resource.NewProfiler(a, seed)
				prof.Noise = profileNoise
				m := mk(resource.NewSpace(a), prof, a.QoS, seed)
				resource.Search(m, s.SearchBudget)
				cfg, _, okB := m.Best()
				if !okB {
					continue
				}
				cpu, mem, lat := evalProf.SampleNoiselessComponents(cfg, 4)
				if name == "random" {
					// Paper: best of all random trials.
					if c := cpu + mem; c < bestRandomCost && lat <= a.QoS {
						bestRandomCost = c
						bestRandom = cfg
					}
					continue
				}
				if lat > a.QoS {
					// A truly-violating pick does not contribute a cost
					// sample (the paper's managers all meet QoS); it is
					// reported through the violation rate instead.
					viol++
					continue
				}
				cpus = append(cpus, cpu)
				mems = append(mems, mem)
			}
			if name == "random" && bestRandom != nil {
				cpu, mem, _ := evalProf.SampleNoiselessComponents(bestRandom, 4)
				cpus, mems = []float64{cpu}, []float64{mem}
			}
			if len(cpus) > 0 {
				res.CPUPct[a.Name][name] = stats.Mean(cpus) / oCPU * 100
				res.MemPct[a.Name][name] = stats.Mean(mems) / oMem * 100
				res.ViolationRate[a.Name][name] = float64(viol) / float64(s.Repeats)
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------------

// Fig14Result compares CLITE and Aquatope as the workflow gets harder:
// (a) more chained stages; (b) more execution-time variability.
type Fig14Result struct {
	Labels   []string
	CLITE    []float64 // % oracle
	Aquatope []float64
}

// Table renders the comparison.
func (r Fig14Result) Table() string {
	rows := make([][]string, len(r.Labels))
	for i := range r.Labels {
		rows[i] = []string{r.Labels[i], f0(r.CLITE[i]) + "%", f0(r.Aquatope[i]) + "%"}
	}
	return formatTable([]string{"Case", "CLITE", "Aquatope"}, rows)
}

// Fig14a sweeps the chain length (1, 3, 5 stages).
func Fig14a(s Scale) Fig14Result {
	res := Fig14Result{}
	for _, n := range []int{1, 3, 5} {
		a := apps.NewChain(n)
		c, q := headToHead(s, a, 0)
		res.Labels = append(res.Labels, fmt.Sprintf("N=%d", n))
		res.CLITE = append(res.CLITE, c)
		res.Aquatope = append(res.Aquatope, q)
	}
	return res
}

// Fig14b sweeps execution-time variability on a single-stage workflow.
func Fig14b(s Scale) Fig14Result {
	res := Fig14Result{}
	for _, cv := range []float64{0, 0.5, 1} {
		a := apps.NewChain(1)
		c, q := headToHead(s, a, cv)
		res.Labels = append(res.Labels, fmt.Sprintf("CV=%.1f", cv))
		res.CLITE = append(res.CLITE, c)
		res.Aquatope = append(res.Aquatope, q)
	}
	return res
}

// headToHead runs CLITE and Aquatope on an app and returns their final
// %-oracle costs (mean over repetitions).
func headToHead(s Scale, a *apps.App, execStd float64) (clitePct, aquaPct float64) {
	_, oracleCost, _, _, ok := solveOracle(a, s.Seed)
	if !ok {
		return math.NaN(), math.NaN()
	}
	evalProf := resource.NewProfiler(a, s.Seed+500)
	run := func(mk func(sp *resource.Space, p *resource.Profiler, q float64, seed int64) resource.Manager) float64 {
		var sum float64
		var n int
		for rep := 0; rep < s.Repeats; rep++ {
			seed := s.Seed + int64(rep)*73
			prof := resource.NewProfiler(a, seed)
			prof.Noise = profileNoise
			prof.ExecTimeStd = execStd
			m := mk(resource.NewSpace(a), prof, a.QoS, seed)
			resource.Search(m, s.SearchBudget)
			if cfg, _, okB := m.Best(); okB {
				if c, feasible := evalTrue(evalProf, cfg, a.QoS); feasible {
					sum += c
					n++
				}
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n) / oracleCost * 100
	}
	fac := managerFactories()
	return run(fac["clite"]), run(fac["aquatope"])
}
