package lint

import "strings"

// Rule scopes one check to a set of packages.
type Rule struct {
	// Include lists import-path globs the check applies to; empty means
	// every package. Globs are Go-style: "aquatope/internal/..." matches
	// the package and everything below it; "..." matches all.
	Include []string
	// Exclude lists import-path globs exempt from the check; it wins over
	// Include.
	Exclude []string
	// Tests also applies the check to _test.go files. Only syntactic
	// analyzers (wallclock, globalrand) can check test files.
	Tests bool
	// Sinks overrides the package paths maporder treats as
	// order-sensitive emission targets (default: the telemetry package
	// and fmt). Ignored by other checks.
	Sinks []string
}

func (r Rule) appliesTo(pkgPath string) bool {
	for _, g := range r.Exclude {
		if matchGlob(g, pkgPath) {
			return false
		}
	}
	if len(r.Include) == 0 {
		return true
	}
	for _, g := range r.Include {
		if matchGlob(g, pkgPath) {
			return true
		}
	}
	return false
}

// matchGlob matches an import path against a Go-style package pattern:
// an exact path, "...", or "prefix/..." (which also matches "prefix").
func matchGlob(pattern, path string) bool {
	if pattern == "..." {
		return true
	}
	if p, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == p || strings.HasPrefix(path, p+"/")
	}
	return path == pattern
}

// Config maps enabled check names to their package scopes.
type Config struct {
	Checks map[string]Rule
}

// DefaultConfig returns the repository's lint policy.
//
//   - wallclock applies everywhere, tests included: every package that the
//     simulation drives must take time from the engine's virtual clock.
//     cmd binaries that legitimately measure real elapsed time annotate
//     the call sites with //aqualint:allow wallclock <reason>.
//   - globalrand applies everywhere except internal/stats, the one
//     package allowed to touch math/rand (it wraps it behind the seeded
//     stats.RNG every other component must use).
//   - maporder and droppederr apply to all compiled (non-test) files.
//   - metricname applies to all compiled files except the telemetry
//     package itself: every metric name and span kind must be built from
//     a constant in the internal/telemetry catalog (names.go / the Kind*
//     constants), so the trace analyzer and dashboards never chase
//     ad-hoc string spellings.
func DefaultConfig() Config {
	return Config{Checks: map[string]Rule{
		"wallclock": {
			Include: []string{"..."},
			Tests:   true,
		},
		"globalrand": {
			Include: []string{"..."},
			Exclude: []string{"aquatope/internal/stats"},
			Tests:   true,
		},
		"maporder": {
			Include: []string{"..."},
		},
		"droppederr": {
			Include: []string{"..."},
		},
		"metricname": {
			Include: []string{"..."},
			// The catalog package itself plumbs names through variables
			// (registry lookups take the name as a parameter).
			Exclude: []string{"aquatope/internal/telemetry"},
		},
		// seedflow proves every seed reaching an RNG constructor comes from
		// configuration or runner.DeriveSeed. internal/stats is the
		// constructor layer itself (its params are the seed plumbing), and
		// the examples are demos that pin a documented seed on purpose.
		"seedflow": {
			Include: []string{"..."},
			Exclude: []string{"aquatope/internal/stats"},
		},
		// spanpair's span-lifecycle CFG check and sharedmut's captured-write
		// check apply to all compiled files.
		"spanpair":  {Include: []string{"..."}},
		"sharedmut": {Include: []string{"..."}},
		// hotalloc is scoped to the per-event hot path: the simulator core,
		// the FaaS substrate, the workflow executor, and — since the
		// incremental-GP engine made per-candidate cost dominated by
		// allocation — the BO stack (linalg primitives, GP posteriors, the
		// engine's candidate loops). Reports elsewhere (CLI table
		// formatting, experiment harnesses) would be noise.
		"hotalloc": {
			Include: []string{
				"aquatope/internal/sim/...",
				"aquatope/internal/faas/...",
				"aquatope/internal/workflow/...",
				"aquatope/internal/linalg/...",
				"aquatope/internal/gp/...",
				"aquatope/internal/bo/...",
			},
		},
	}}
}
