package experiments

import (
	"fmt"

	"aquatope/internal/chaos"
	"aquatope/internal/core"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/sched"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// ArenaResult is the scheduler head-to-head: every registered arena
// scheduler (the AQUATOPE brain plus the literature baselines from
// internal/sched) runs the same application on the same platform under
// three workload regimes — steady traffic, fault injection, and overload —
// and each cell reports QoS compliance, cost, goodput and decision effort.
type ArenaResult struct {
	Schedulers []string
	Workloads  []string
	// Cell metrics are keyed "<workload>|<scheduler>".
	Violation map[string]float64
	CostPerWf map[string]float64
	Goodput   map[string]float64
	Decisions map[string]int
	// DecLatMS is the modeled mean per-decision latency (sched.Meter's
	// deterministic work accounting at nominal per-op costs; wall-clock
	// timing would break byte-determinism across -parallel levels).
	DecLatMS map[string]float64
}

func arenaKey(workload, scheduler string) string {
	return workload + "|" + scheduler
}

// Table renders one row per (workload, scheduler) cell.
func (r ArenaResult) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r ArenaResult) Rows() ([]string, [][]string) {
	var rows [][]string
	for _, w := range r.Workloads {
		for _, sc := range r.Schedulers {
			k := arenaKey(w, sc)
			rows = append(rows, []string{
				w,
				sc,
				pct(r.Violation[k]),
				f2(r.CostPerWf[k]),
				pct(r.Goodput[k]),
				fmt.Sprintf("%d", r.Decisions[k]),
				fmt.Sprintf("%.3f", r.DecLatMS[k]),
			})
		}
	}
	return []string{"Workload", "Scheduler", "QoSViol", "Cost/wf", "Goodput", "Decisions", "DecLat(ms)"}, rows
}

// ArenaSchedulers is the head-to-head lineup, in presentation order: the
// paper's brain, its uncertainty-unaware ablation would be redundant here,
// then the three literature-style competitors.
var ArenaSchedulers = []string{"aquatope", "jolteon", "caerus", "naive"}

// ArenaWorkloads are the three regimes each scheduler faces.
var ArenaWorkloads = []string{"steady", "chaos", "overload"}

// arenaMinutes scales the arena trace like the overload sweep: the
// comparative dynamics settle within a few simulated hours.
func arenaMinutes(s Scale) (traceMin, trainMin int) {
	traceMin = s.TraceMin / 12
	if traceMin < 60 {
		traceMin = 60
	}
	return traceMin, traceMin / 3
}

// arenaOptions shrinks the BNN model to the arena's short traces and arms
// the per-cell decision meter. The pool window must sit well inside the
// training prefix (trainMin is 20 at the test micro scale).
func arenaOptions(m *sched.Meter) sched.Options {
	return sched.Options{
		EncoderHidden: 10,
		PredHidden:    []int{10, 6},
		EncoderEpochs: 4,
		PredEpochs:    10,
		MCSamples:     6,
		LR:            0.01,
		Window:        16,
		HeadroomZ:     2,
		Meter:         m,
	}
}

// arenaTrace drives one workload regime. Steady and chaos share a mildly
// diurnal stream well inside platform capacity; overload is a flat stream
// far past the small cluster's capacity.
func arenaTrace(s Scale, workload string) *trace.Trace {
	traceMin, _ := arenaMinutes(s)
	if workload == "overload" {
		return trace.Synthesize(trace.GenConfig{
			DurationMin:    traceMin,
			MeanRatePerMin: 48,
			Diurnal:        0,
			CV:             1,
			Seed:           s.Seed + 53,
		})
	}
	return trace.Synthesize(trace.GenConfig{
		DurationMin:    traceMin,
		MeanRatePerMin: 6,
		Diurnal:        0.4,
		CV:             1.5,
		Seed:           s.Seed + 41,
	})
}

// arenaClusterCfg sizes the platform per regime. Invokers carry 8 GB so
// even the naive scheduler's maximum-memory configuration packs: the arena
// compares policies, not placement failures.
func arenaClusterCfg(s Scale, workload string) faas.Config {
	if workload == "overload" {
		// Invokers must still fit the top-of-grid configuration (4 CPU /
		// 4 GB per function) or the peak-provisioned schedulers would be
		// measuring placement failure, not policy.
		return faas.Config{
			Invokers:           2,
			CPUPerInvoker:      4,
			MemoryPerInvokerMB: 8192,
			QueueLimit:         16,
			Admission:          faas.AdmitDeadlineAware,
			Breaker:            faas.BreakerConfig{Enabled: true},
			Seed:               s.Seed + 1,
		}
	}
	return faas.Config{
		Invokers:           3,
		CPUPerInvoker:      4,
		MemoryPerInvokerMB: 8192,
		Seed:               s.Seed + 1,
	}
}

// arenaCell is one (workload, scheduler) replication's outcome.
type arenaCell struct {
	violation, costPerWf, goodput, decLatMS float64
	decisions                               int
}

// arenaCost prices one live run in synthetic cost units: CPU core-seconds
// actually consumed plus provisioned memory GB-seconds at the grid's
// 4 GB-per-core equivalence — so idle pre-warmed capacity (the naive
// scheduler's signature waste) is priced, not just busy time.
func arenaCost(reg *telemetry.Registry) float64 {
	return reg.Counter(telemetry.MetricCPUTime).Value() +
		reg.Counter(telemetry.MetricProvisionedMemTime).Value()/4
}

// Arena sweeps scheduler × workload and reports per-cell QoS violations,
// cost per workflow, goodput and decision effort. Deterministic and
// parallel-safe like every registered experiment: decision latency is the
// meter's modeled accounting, never wall clock.
func Arena(s Scale) ArenaResult {
	res := ArenaResult{
		Schedulers: ArenaSchedulers,
		Workloads:  ArenaWorkloads,
		Violation:  make(map[string]float64),
		CostPerWf:  make(map[string]float64),
		Goodput:    make(map[string]float64),
		Decisions:  make(map[string]int),
		DecLatMS:   make(map[string]float64),
	}
	_, trainMin := arenaMinutes(s)
	budget := s.SearchBudget / 3
	if budget < 6 {
		budget = 6
	}
	var jobs []runner.Job[arenaCell]
	for _, workload := range res.Workloads {
		workload := workload
		for _, schedName := range res.Schedulers {
			schedName := schedName
			jobs = append(jobs, runner.Job[arenaCell]{
				Cell: workload + "/" + schedName,
				Run: func(ctx runner.Ctx) (arenaCell, error) {
					app := overloadApp()
					reg := ctx.Registry
					if reg == nil {
						reg = telemetry.NewRegistry()
					}
					meter := &sched.Meter{}
					schd, ok := sched.New(schedName, arenaOptions(meter))
					if !ok {
						return arenaCell{}, fmt.Errorf("arena: unknown scheduler %q", schedName)
					}
					cfg := core.Config{
						Components:   []core.Component{{App: app, Trace: arenaTrace(s, workload)}},
						TrainMin:     trainMin,
						Scheduler:    schd,
						SearchBudget: budget,
						ClusterCfg:   arenaClusterCfg(s, workload),
						RuntimeNoise: runtimeNoise,
						Tracer:       ctx.Tracer,
						Registry:     reg,
						Seed:         s.Seed,
					}
					switch workload {
					case "chaos":
						scn, ok := chaos.Builtin("mixed", float64(arenaTraceMinS(s)), s.Seed+43)
						if !ok {
							return arenaCell{}, fmt.Errorf("arena: missing chaos scenario")
						}
						cfg.Chaos = scn
						pol := workflow.DefaultRetryPolicy()
						pol.Timeout = 2 * app.QoS
						cfg.Resilience = &pol
					case "overload":
						pol := workflow.DefaultRetryPolicy()
						pol.Timeout = 2 * app.QoS
						pol.RetryBudget = 2
						pol.RetryBudgetPerSec = 0.05
						pol.HedgeQueueLimit = 1
						cfg.Resilience = &pol
						cfg.PoolGuard = &pool.Guard{ShedThreshold: 30, RecoverIntervals: 3}
					}
					out, err := core.Run(cfg)
					if err != nil {
						return arenaCell{}, err
					}
					wf := out.Workflows()
					costPerWf := 0.0
					if wf > 0 {
						costPerWf = arenaCost(reg) / float64(wf)
					}
					return arenaCell{
						violation: out.QoSViolationRate(),
						costPerWf: costPerWf,
						goodput:   out.Goodput(),
						decisions: meter.Decisions(),
						decLatMS:  meter.MeanDecisionLatencyS() * 1000,
					}, nil
				}})
		}
	}
	cells := runner.MustRun(s.engine("arena"), jobs)

	ji := 0
	for _, workload := range res.Workloads {
		for _, schedName := range res.Schedulers {
			k := arenaKey(workload, schedName)
			res.Violation[k] = cells[ji].violation
			res.CostPerWf[k] = cells[ji].costPerWf
			res.Goodput[k] = cells[ji].goodput
			res.Decisions[k] = cells[ji].decisions
			res.DecLatMS[k] = cells[ji].decLatMS
			ji++
		}
	}
	return res
}

// arenaTraceMinS is the arena trace horizon in seconds (chaos scenarios
// are sized in wall time).
func arenaTraceMinS(s Scale) int {
	traceMin, _ := arenaMinutes(s)
	return traceMin * 60
}
