package experiments

import (
	"fmt"

	"aquatope/internal/apps"
	"aquatope/internal/core"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// OverloadResult is the saturation sweep: arrival-rate multiplier × retry
// policy on a deliberately small cluster with bounded queues, breakers and
// the pool guard enabled. The ×1 row is the 0%-overload baseline; the top
// multipliers push arrivals well past capacity, where the platform must
// shed its way to bounded tail latency.
type OverloadResult struct {
	Mults    []int
	Policies []string
	// Cell metrics are keyed "x<mult>|<policy>".
	Goodput   map[string]float64
	ShedRate  map[string]float64
	P99       map[string]float64
	Violation map[string]float64
	Denied    map[string]int
}

func overloadKey(mult int, policy string) string {
	return fmt.Sprintf("x%d|%s", mult, policy)
}

// Table renders one row per (multiplier, policy) cell.
func (r OverloadResult) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r OverloadResult) Rows() ([]string, [][]string) {
	var rows [][]string
	for _, mult := range r.Mults {
		load := fmt.Sprintf("x%d", mult)
		if mult == r.Mults[0] {
			load += " (baseline)"
		}
		for _, p := range r.Policies {
			k := overloadKey(mult, p)
			rows = append(rows, []string{
				load,
				p,
				pct(r.Goodput[k]),
				pct(r.ShedRate[k]),
				f2(r.P99[k]),
				pct(r.Violation[k]),
				fmt.Sprintf("%d", r.Denied[k]),
			})
		}
	}
	return []string{"Load", "Policy", "Goodput", "ShedRate", "P99(s)", "QoSViol", "Denied"}, rows
}

// overloadApp is a two-stage chain heavy enough that the sweep's small
// cluster saturates at modest arrival rates. Each replication constructs
// its own copy (Register and Defaults mutate cluster state).
func overloadApp() *apps.App {
	mk := func(execSec float64) *faas.SyntheticModel {
		m := faas.DefaultSyntheticModel()
		m.BaseExecSec = execSec
		m.ColdInitSec = 1
		m.ColdExecPenalty = 1.5
		m.CPUShare = 0.85
		m.MemKneeMB = 256
		return m
	}
	name := "ov-chain"
	return &apps.App{
		Name: name,
		DAG:  workflow.Chain(name, "ov-f0", "ov-f1"),
		Specs: []faas.FunctionSpec{
			{Name: "ov-f0", Model: mk(3.0)},
			{Name: "ov-f1", Model: mk(2.5)},
		},
		Defaults: map[string]faas.ResourceConfig{
			"ov-f0": {CPU: 1, MemoryMB: 512},
			"ov-f1": {CPU: 1, MemoryMB: 512},
		},
		// Generous end-to-end budget: under the baseline load virtually
		// every workflow meets it, so violations at higher multipliers
		// measure saturation, not a tight deadline.
		QoS: 30,
	}
}

// overloadMinutes scales the sweep's trace to the Scale without inheriting
// the multi-day end-to-end horizon: the saturation dynamics settle within
// an hour of simulated time.
func overloadMinutes(s Scale) (traceMin, trainMin int) {
	traceMin = s.TraceMin / 12
	if traceMin < 60 {
		traceMin = 60
	}
	return traceMin, traceMin / 4
}

// overloadTrace is a flat (non-diurnal) arrival stream whose rate the sweep
// multiplies through and past the cluster's capacity (~43 workflows/min at
// the app's ~5.5 CPU-seconds per workflow on 4 CPUs).
func overloadTrace(s Scale, mult int) *trace.Trace {
	traceMin, _ := overloadMinutes(s)
	return trace.Synthesize(trace.GenConfig{
		DurationMin:    traceMin,
		MeanRatePerMin: 12 * float64(mult),
		Diurnal:        0,
		CV:             1,
		Seed:           s.Seed + 31,
	})
}

// overloadClusterCfg is the sweep's platform: two small invokers, bounded
// per-function queues under deadline-aware admission, breakers armed.
func overloadClusterCfg(s Scale) faas.Config {
	return faas.Config{
		Invokers:           2,
		CPUPerInvoker:      2,
		MemoryPerInvokerMB: 2048,
		QueueLimit:         16,
		Admission:          faas.AdmitDeadlineAware,
		Breaker:            faas.BreakerConfig{Enabled: true},
		Seed:               s.Seed + 1,
	}
}

// overloadPolicy builds the sweep's retry-policy column. "naive" retries
// and hedges without restraint; "budget" adds the shared retry budget and
// hedge backpressure so resilience degrades to fail-fast under saturation.
func overloadPolicy(polName string, qos float64) *workflow.RetryPolicy {
	switch polName {
	case "naive":
		p := workflow.DefaultRetryPolicy()
		p.Timeout = 2 * qos
		p.HedgeDelay = qos / 2
		p.MaxAttempts = 4
		return &p
	case "budget":
		p := workflow.DefaultRetryPolicy()
		p.Timeout = 2 * qos
		p.HedgeDelay = qos / 2
		p.MaxAttempts = 4
		p.RetryBudget = 2
		p.RetryBudgetPerSec = 0.05
		p.HedgeQueueLimit = 1
		return &p
	}
	return nil
}

// overloadCell is one (multiplier, policy) replication's outcome.
type overloadCell struct {
	goodput, shedRate, p99, violation float64
	denied                            int
}

// Overload sweeps the arrival-rate multiplier through and past saturation
// for three resilience configurations. All overload-protection layers are
// on: bounded queues with deadline-aware admission, per-invoker breakers,
// and the pool guard's degraded mode. Deterministic and parallel-safe like
// every registered experiment.
func Overload(s Scale) OverloadResult {
	res := OverloadResult{
		Mults:     []int{1, 2, 4, 8},
		Policies:  []string{"none", "naive", "budget"},
		Goodput:   make(map[string]float64),
		ShedRate:  make(map[string]float64),
		P99:       make(map[string]float64),
		Violation: make(map[string]float64),
		Denied:    make(map[string]int),
	}
	_, trainMin := overloadMinutes(s)
	var jobs []runner.Job[overloadCell]
	for _, mult := range res.Mults {
		mult := mult
		for _, polName := range res.Policies {
			polName := polName
			jobs = append(jobs, runner.Job[overloadCell]{
				Cell: fmt.Sprintf("x%d/%s", mult, polName),
				Run: func(ctx runner.Ctx) (overloadCell, error) {
					app := overloadApp()
					// The replication's private registry doubles as the
					// cell's measurement surface: the platform-level shed
					// counters live there, not in the workflow results.
					reg := ctx.Registry
					if reg == nil {
						reg = telemetry.NewRegistry()
					}
					out, err := core.Run(core.Config{
						Components:   []core.Component{{App: app, Trace: overloadTrace(s, mult)}},
						TrainMin:     trainMin,
						PoolFactory:  core.KeepAlivePoolFactory(600),
						ClusterCfg:   overloadClusterCfg(s),
						RuntimeNoise: runtimeNoise,
						Resilience:   overloadPolicy(polName, app.QoS),
						PoolGuard:    &pool.Guard{ShedThreshold: 30, RecoverIntervals: 3},
						Tracer:       ctx.Tracer,
						Registry:     reg,
						Seed:         s.Seed,
					})
					if err != nil {
						return overloadCell{}, err
					}
					p99 := 0.0
					for _, a := range out.PerApp {
						p99 = a.P99
					}
					// Platform shed fraction: shed / all invocation outcomes
					// (cold + warm + failed + timed-out + shed).
					shed := reg.Counter(telemetry.MetricShedInvocations).Value()
					attempts := shed +
						reg.Counter(telemetry.MetricColdStarts).Value() +
						reg.Counter(telemetry.MetricWarmStarts).Value() +
						reg.Counter(telemetry.MetricFailedInvocations).Value() +
						reg.Counter(telemetry.MetricTimedOutInvocations).Value()
					shedRate := 0.0
					if attempts > 0 {
						shedRate = shed / attempts
					}
					return overloadCell{
						goodput:   out.Goodput(),
						shedRate:  shedRate,
						p99:       p99,
						violation: out.QoSViolationRate(),
						denied:    out.RetriesDenied() + out.HedgesSkipped(),
					}, nil
				}})
		}
	}
	cells := runner.MustRun(s.engine("overload"), jobs)

	ji := 0
	for _, mult := range res.Mults {
		for _, polName := range res.Policies {
			k := overloadKey(mult, polName)
			res.Goodput[k] = cells[ji].goodput
			res.ShedRate[k] = cells[ji].shedRate
			res.P99[k] = cells[ji].p99
			res.Violation[k] = cells[ji].violation
			res.Denied[k] = cells[ji].denied
			ji++
		}
	}
	return res
}
