package pool

import (
	"aquatope/internal/checkpoint"
	"aquatope/internal/timeseries"
)

// SnapshotPolicy serializes a policy's mutable state, keyed by a type tag.
// The BNN-backed Aquatope policy persists its full model; the forecasting
// baselines persist their fitted series and refit deterministically on
// restore (a re-factorization recipe — the fit is a pure function of the
// series). Policy types this package does not know serialize as an opaque
// name-only tag: they restore to their fresh state and re-learn through
// replay.
func SnapshotPolicy(enc *checkpoint.Encoder, p Policy) {
	switch p := p.(type) {
	case *FixedKeepAlive:
		enc.String("keepalive")
	case *Autoscale:
		enc.String("autoscale")
		enc.F64(p.prev)
	case *Histogram:
		enc.String("histogram")
		enc.F64s(p.gaps)
	case *FaaSCache:
		enc.String("faascache")
		enc.F64(p.auto.prev)
	case *IceBreaker:
		enc.String("icebreaker")
		enc.F64s(p.fitted)
	case *PredictorPolicy:
		enc.String("predictor:" + p.Label)
		enc.F64s(p.fitted)
	case *Aquatope:
		enc.String("aquatope")
		enc.Int(p.offset)
		enc.Bool(p.model != nil)
		if p.model != nil {
			p.model.Snapshot(enc)
		}
	default:
		enc.String("opaque:" + p.Name())
	}
}

// RestorePolicy loads state saved by SnapshotPolicy into a policy of the
// identical type and configuration. An Aquatope policy restoring a trained
// model must already hold a structurally identical model (Fit has run —
// which verified replay guarantees, since training precedes any checkpoint
// that captures a trained model).
func RestorePolicy(dec *checkpoint.Decoder, p Policy) error {
	tag := dec.String()
	if err := dec.Err(); err != nil {
		return err
	}
	switch p := p.(type) {
	case *FixedKeepAlive:
		if tag != "keepalive" {
			return checkpoint.ErrShape
		}
	case *Autoscale:
		if tag != "autoscale" {
			return checkpoint.ErrShape
		}
		p.prev = dec.F64()
	case *Histogram:
		if tag != "histogram" {
			return checkpoint.ErrShape
		}
		p.gaps = dec.F64s()
	case *FaaSCache:
		if tag != "faascache" {
			return checkpoint.ErrShape
		}
		p.auto.prev = dec.F64()
	case *IceBreaker:
		if tag != "icebreaker" {
			return checkpoint.ErrShape
		}
		p.fitted = dec.F64s()
		if dec.Err() == nil && p.fitted != nil {
			h, w := p.Harmonics, p.Window
			if h <= 0 {
				h = 8
			}
			if w <= 0 {
				w = 256
			}
			p.model = timeseries.NewFourier(h, w)
			p.model.Fit(p.fitted)
		}
	case *PredictorPolicy:
		if tag != "predictor:"+p.Label {
			return checkpoint.ErrShape
		}
		p.fitted = dec.F64s()
		if dec.Err() == nil && p.fitted != nil {
			p.Predictor.Fit(p.fitted)
		}
	case *Aquatope:
		if tag != "aquatope" {
			return checkpoint.ErrShape
		}
		p.offset = dec.Int()
		hasModel := dec.Bool()
		if err := dec.Err(); err != nil {
			return err
		}
		if hasModel {
			if p.model == nil {
				return checkpoint.ErrShape
			}
			if err := p.model.Restore(dec); err != nil {
				return err
			}
		}
	default:
		if tag != "opaque:"+p.Name() {
			return checkpoint.ErrShape
		}
	}
	return dec.Err()
}

// Snapshot serializes the manager: per-function demand histories, applied
// targets, watermarks, the Guard degraded-mode state machine, and each
// policy's state. The sampling/tick events live in the simulation queue and
// are replay-derived.
func (m *Manager) Snapshot(enc *checkpoint.Encoder) {
	enc.String("pool.manager")
	enc.F64(m.IntervalSec)
	enc.Int(m.SamplesPerInterval)
	enc.F64(m.ApplyAfter)
	enc.F64(m.RewarmDelaySec)
	enc.Bool(m.started)
	enc.Bool(m.degraded)
	enc.Int(m.cleanTicks)
	enc.Int(m.lastShed)
	enc.U64(uint64(len(m.entries)))
	for _, e := range m.entries {
		enc.String(e.fn)
		enc.F64s(e.history)
		enc.Int(e.offsetMin)
		enc.F64(e.watermark)
		enc.Int(e.lastTarget)
		SnapshotPolicy(enc, e.policy)
	}
}

// Restore loads manager state saved by Snapshot. The manager must already
// manage the same functions in the same order (Manage calls from the same
// config) — only their accumulated state is loaded.
func (m *Manager) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("pool.manager")
	m.IntervalSec = dec.F64()
	m.SamplesPerInterval = dec.Int()
	m.ApplyAfter = dec.F64()
	m.RewarmDelaySec = dec.F64()
	m.started = dec.Bool()
	m.degraded = dec.Bool()
	m.cleanTicks = dec.Int()
	m.lastShed = dec.Int()
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != uint64(len(m.entries)) {
		return checkpoint.ErrShape
	}
	for _, e := range m.entries {
		dec.Expect(e.fn)
		e.history = dec.F64s()
		e.offsetMin = dec.Int()
		e.watermark = dec.F64()
		e.lastTarget = dec.Int()
		if err := RestorePolicy(dec, e.policy); err != nil {
			return err
		}
	}
	return dec.Err()
}
