package workflow

import (
	"aquatope/internal/checkpoint"
	"aquatope/internal/stats"
)

// Snapshot serializes the executor's mutable state: the retry-jitter RNG
// stream, including whether its lazy initialization has happened (an
// initialized-at-zero-draws stream and an uninitialized one are different
// states only in object identity, but capturing the flag keeps the digest
// an exact structural fingerprint). In-flight workflow state machines hold
// completion closures and are replay-derived.
func (e *Executor) Snapshot(enc *checkpoint.Encoder) {
	enc.String("workflow.executor")
	enc.I64(e.Seed)
	enc.Bool(e.rng != nil)
	if e.rng != nil {
		e.rng.Snapshot(enc)
	}
}

// Restore loads executor state saved by Snapshot.
func (e *Executor) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("workflow.executor")
	seed := dec.I64()
	hasRNG := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	e.Seed = seed
	if hasRNG {
		e.rng = stats.NewRNG(0) //aqualint:allow seedflow placeholder state; Restore overwrites it with the snapshot's seed and position
		if err := e.rng.Restore(dec); err != nil {
			return err
		}
	} else {
		e.rng = nil
	}
	return nil
}
