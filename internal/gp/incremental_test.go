package gp

import (
	"math"
	"testing"

	"aquatope/internal/stats"
)

// cloneCold builds a fresh GP fitted from scratch on g's current window —
// the cold refactor() reference the incremental path must match.
func cloneCold(t *testing.T, g *GP) *GP {
	t.Helper()
	X, y := g.Window()
	cold := New(g.Kernel, g.Noise)
	if len(X) == 0 {
		return cold
	}
	if err := cold.Fit(X, y); err != nil {
		t.Fatalf("cold fit: %v", err)
	}
	return cold
}

func maxFactorDiff(a, b *GP) float64 {
	if a.chol == nil || b.chol == nil {
		if a.chol == b.chol {
			return 0
		}
		return math.Inf(1)
	}
	if a.chol.Rows != b.chol.Rows {
		return math.Inf(1)
	}
	var worst float64
	for i := range a.chol.Data {
		d := math.Abs(a.chol.Data[i] - b.chol.Data[i])
		if math.IsNaN(d) {
			return math.Inf(1)
		}
		if d > worst {
			worst = d
		}
	}
	for i := range a.alpha {
		d := math.Abs(a.alpha[i] - b.alpha[i])
		if math.IsNaN(d) || d > worst*10 {
			if math.IsNaN(d) {
				return math.Inf(1)
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestIncrementalMatchesColdProperty drives ≥200 randomized add/evict/refit
// sequences per kernel and checks the incrementally maintained factor (and
// posterior) stays within 1e-9 of a cold refactor of the same window.
func TestIncrementalMatchesColdProperty(t *testing.T) {
	kernels := []struct {
		name string
		mk   func(dim int) Kernel
	}{
		{"matern52", func(dim int) Kernel { return NewMatern52(dim) }},
		{"rbf", func(dim int) Kernel { return NewRBF(dim) }},
	}
	for _, kc := range kernels {
		t.Run(kc.name, func(t *testing.T) {
			rng := stats.NewRNG(31)
			const dim = 3
			g := New(kc.mk(dim), 0.01)
			g.SetWindow(15)
			probe := []float64{0.4, 0.6, 0.5}
			steps, checks := 0, 0
			for steps < 220 {
				op := rng.Float64()
				switch {
				case op < 0.65 || g.Len() == 0:
					x := make([]float64, dim)
					for d := range x {
						x[d] = rng.Float64()
					}
					if err := g.Observe(x, math.Sin(4*x[0])+x[1]+rng.Normal(0, 0.1)); err != nil {
						t.Fatalf("observe: %v", err)
					}
				case op < 0.9:
					g.Forget()
				default:
					// Scheduled refit: perturb hyperparameters and rebuild, as
					// the refit-every-k schedule does.
					h := g.Kernel.Hyperparameters()
					for i := range h {
						h[i] += rng.Uniform(-0.2, 0.2)
					}
					g.Kernel.SetHyperparameters(h)
					X, y := g.Window()
					if err := g.Fit(X, y); err != nil {
						t.Fatalf("refit: %v", err)
					}
				}
				steps++
				if g.Len() < 1 {
					continue
				}
				cold := cloneCold(t, g)
				if d := maxFactorDiff(g, cold); d > 1e-9 {
					t.Fatalf("step %d (n=%d): factor diverged by %g", steps, g.Len(), d)
				}
				im, iv := g.Posterior(probe)
				cm, cv := cold.Posterior(probe)
				if math.Abs(im-cm) > 1e-9 || math.Abs(iv-cv) > 1e-9 {
					t.Fatalf("step %d: posterior diverged: (%v,%v) vs (%v,%v)", steps, im, iv, cm, cv)
				}
				checks++
			}
			if checks < 200 {
				t.Fatalf("only %d checked sequences", checks)
			}
		})
	}
}

// TestObserveAppendBitwiseEqualsFit: with no evictions the extended factor
// must be bitwise identical to a cold fit of the same points — the property
// the byte-identical experiment tables rely on.
func TestObserveAppendBitwiseEqualsFit(t *testing.T) {
	rng := stats.NewRNG(5)
	const dim = 2
	inc := New(NewMatern52(dim), 0.01)
	var X [][]float64
	var y []float64
	for i := 0; i < 25; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		v := x[0]*x[0] + rng.Normal(0, 0.05)
		X = append(X, x)
		y = append(y, v)
		if err := inc.Observe(x, v); err != nil {
			t.Fatal(err)
		}
		cold := New(NewMatern52(dim), 0.01)
		if err := cold.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		for j := range cold.chol.Data {
			if inc.chol.Data[j] != cold.chol.Data[j] {
				t.Fatalf("n=%d: factor not bitwise equal at %d", i+1, j)
			}
		}
		for j := range cold.alpha {
			if inc.alpha[j] != cold.alpha[j] {
				t.Fatalf("n=%d: alpha not bitwise equal at %d", i+1, j)
			}
		}
	}
}

// TestWindowEviction: the window capacity bounds retention and Forget drops
// the oldest point first.
func TestWindowEviction(t *testing.T) {
	g := New(NewMatern52(1), 0.01)
	g.SetWindow(5)
	for i := 0; i < 9; i++ {
		if err := g.Observe([]float64{float64(i) / 10}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 5 {
		t.Fatalf("window len = %d, want 5", g.Len())
	}
	X, y := g.Window()
	if X[0][0] != 0.4 || y[0] != 4 {
		t.Fatalf("oldest retained = (%v, %v), want (0.4, 4)", X[0][0], y[0])
	}
	g.Forget()
	if _, y := g.Window(); y[0] != 5 {
		t.Fatalf("Forget did not evict the oldest")
	}
}

// TestLeaveOneOutAllMatchesSingle: the batched closed-form LOO equals the
// per-index variant.
func TestLeaveOneOutAllMatchesSingle(t *testing.T) {
	rng := stats.NewRNG(77)
	g := New(NewMatern52(2), 0.05)
	for i := 0; i < 12; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Observe(x, x[0]+rng.Normal(0, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	means, vars := g.LeaveOneOutAll()
	for i := 0; i < g.Len(); i++ {
		m, v, err := g.LeaveOneOut(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m-means[i]) > 1e-12 || math.Abs(v-vars[i]) > 1e-12 {
			t.Fatalf("i=%d: (%v,%v) vs batch (%v,%v)", i, m, v, means[i], vars[i])
		}
	}
}

// TestPosteriorBatchRecentMatches: the cached-kernel batch posterior over
// recent window points equals PosteriorBatch on the same points.
func TestPosteriorBatchRecentMatches(t *testing.T) {
	rng := stats.NewRNG(91)
	g := New(NewMatern52(2), 0.02)
	var X [][]float64
	for i := 0; i < 14; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		X = append(X, x)
		if err := g.Observe(x, math.Cos(3*x[1])+rng.Normal(0, 0.05)); err != nil {
			t.Fatal(err)
		}
	}
	m := 6
	meanR, covR := g.PosteriorBatchRecent(m)
	meanB, covB := g.PosteriorBatch(X[len(X)-m:])
	for i := 0; i < m; i++ {
		if math.Abs(meanR[i]-meanB[i]) > 1e-12 {
			t.Fatalf("mean[%d]: %v vs %v", i, meanR[i], meanB[i])
		}
		for j := 0; j < m; j++ {
			if math.Abs(covR.At(i, j)-covB.At(i, j)) > 1e-12 {
				t.Fatalf("cov[%d][%d]: %v vs %v", i, j, covR.At(i, j), covB.At(i, j))
			}
		}
	}
}

// TestFullRefitAblationAgrees: SetFullRefit(true) produces the same model
// within tolerance (it is the cold path itself).
func TestFullRefitAblationAgrees(t *testing.T) {
	rng := stats.NewRNG(3)
	inc := New(NewMatern52(1), 0.01)
	full := New(NewMatern52(1), 0.01)
	full.SetFullRefit(true)
	inc.SetWindow(8)
	full.SetWindow(8)
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64()}
		v := math.Sin(5*x[0]) + rng.Normal(0, 0.05)
		if err := inc.Observe(x, v); err != nil {
			t.Fatal(err)
		}
		if err := full.Observe(x, v); err != nil {
			t.Fatal(err)
		}
	}
	p := []float64{0.3}
	im, iv := inc.Posterior(p)
	fm, fv := full.Posterior(p)
	if math.Abs(im-fm) > 1e-9 || math.Abs(iv-fv) > 1e-9 {
		t.Fatalf("incremental (%v,%v) vs full (%v,%v)", im, iv, fm, fv)
	}
}
