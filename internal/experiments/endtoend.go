package experiments

import (
	"aquatope/internal/core"
	"aquatope/internal/experiments/runner"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
)

// e2eComponents builds the end-to-end workload: the five applications,
// each driven by an Azure-like trace of its own archetype. Jobs call this
// inside their bodies — construction is deterministic, so every replication
// sees identical components without sharing mutable state.
func e2eComponents(s Scale) []core.Component {
	var comps []core.Component
	for i, a := range evalApps(s.Seed) {
		comps = append(comps, core.Component{
			App:   a,
			Trace: ensembleTrace(i*3, s.TraceMin, s.Seed+77),
		})
	}
	return comps
}

// runtimeNoise is the live-platform interference for end-to-end runs.
var runtimeNoise = faas.Noise{GaussianStd: 0.1, OutlierRate: 0.01, OutlierScale: 3}

// aquatopePoolFactory returns a core.PolicyFactory producing fresh
// scale-adjusted Aquatope pool policies.
func (s Scale) aquatopePoolFactory(lite bool) core.PolicyFactory {
	return func(fn string) pool.Policy { return s.aquatopePolicy(lite) }
}

// ---------------------------------------------------------------------------

// Fig17Result demonstrates the cold-start/resource-management correlation:
// a resource manager without the pre-warmed pool must split the difference
// between cold and warm behaviour and overprovisions.
type Fig17Result struct {
	FullCPU, FullMem     float64
	RMOnlyCPU, RMOnlyMem float64
}

// Table renders the comparison (full system = 100%).
func (r Fig17Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Fig17Result) Rows() ([]string, [][]string) {
	rows := [][]string{
		{"Prewarm + Resource Manager", "100%", "100%"},
		{"Resource Manager Only",
			f0(r.RMOnlyCPU/r.FullCPU*100) + "%",
			f0(r.RMOnlyMem/r.FullMem*100) + "%"},
	}
	return []string{"System", "CPU time", "Memory time"}, rows
}

// e2eOutcome is one end-to-end system run's aggregate measurements.
type e2eOutcome struct {
	violation, cpu, mem, cold float64
}

// runE2E executes one full-system simulation and reduces it to the
// aggregates the figures report.
func runE2E(cfg core.Config) (e2eOutcome, error) {
	r, err := core.Run(cfg)
	if err != nil {
		return e2eOutcome{}, err
	}
	return e2eOutcome{
		violation: r.QoSViolationRate(),
		cpu:       r.CPUTime(),
		mem:       r.MemTime(),
		cold:      r.ColdStartRate(),
	}, nil
}

// fig17FullConfig and fig17RMOnlyConfig build the two system
// configurations. Jobs construct them fresh inside their bodies per the
// runner's no-shared-mutable-state contract.
func fig17FullConfig(s Scale) core.Config {
	return core.Config{
		Components:     e2eComponents(s),
		TrainMin:       s.TrainMin,
		PoolFactory:    s.aquatopePoolFactory(false),
		ManagerFactory: core.AquatopeManagerFactory(),
		SearchBudget:   s.SearchBudget,
		ProfileNoise:   profileNoise,
		RuntimeNoise:   runtimeNoise,
		Seed:           s.Seed,
	}
}

func fig17RMOnlyConfig(s Scale) core.Config {
	return core.Config{
		Components:        e2eComponents(s),
		TrainMin:          s.TrainMin,
		PoolFactory:       core.KeepAlivePoolFactory(600),
		ManagerFactory:    core.AquatopeManagerFactory(),
		SearchBudget:      s.SearchBudget,
		ProfileNoise:      profileNoise,
		RuntimeNoise:      runtimeNoise,
		ColdStartFraction: 0.5, // forced to balance cold and warm behaviour
		Seed:              s.Seed,
	}
}

// Fig17 compares the full Aquatope against a variant with only the
// resource manager (provider keep-alive pool; profiling forced to average
// over cold and warm behaviour).
//
// The work is submitted in two batches so independent trajectories
// actually fan out: first every per-app BO search of both systems (2×5
// jobs — the sequential-trajectory part that used to serialize inside one
// big replication), then the two live cluster runs with the searched
// configurations injected. Seeds come from core.SearchSeeds and telemetry
// merges in submission order, so the span stream, metric snapshot and
// table stay byte-identical to the old monolithic two-job layout.
func Fig17(s Scale) Fig17Result {
	type searched struct {
		app string
		cfg map[string]faas.ResourceConfig
	}
	n := len(e2eComponents(s))
	var sjobs []runner.Job[searched]
	for i := 0; i < n; i++ {
		i := i
		sjobs = append(sjobs, runner.Job[searched]{Cell: "full-search", Rep: i,
			Run: func(ctx runner.Ctx) (searched, error) {
				cfg := fig17FullConfig(s)
				seeds := core.SearchSeeds(cfg)
				return searched{cfg.Components[i].App.Name,
					core.SearchComponent(cfg, i, seeds[i], ctx.Tracer)}, nil
			}})
	}
	for i := 0; i < n; i++ {
		i := i
		sjobs = append(sjobs, runner.Job[searched]{Cell: "rm-search", Rep: i,
			Run: func(runner.Ctx) (searched, error) {
				// The rm-only system's search spans were never recorded
				// (its replication ran untraced), so keep its tracer off.
				cfg := fig17RMOnlyConfig(s)
				seeds := core.SearchSeeds(cfg)
				return searched{cfg.Components[i].App.Name,
					core.SearchComponent(cfg, i, seeds[i], nil)}, nil
			}})
	}
	eng := s.engine("fig17")
	found := runner.MustRun(eng, sjobs)
	chosenFull := make(map[string]map[string]faas.ResourceConfig, n)
	chosenRM := make(map[string]map[string]faas.ResourceConfig, n)
	for i := 0; i < n; i++ {
		chosenFull[found[i].app] = found[i].cfg
		chosenRM[found[n+i].app] = found[n+i].cfg
	}

	ljobs := []runner.Job[e2eOutcome]{
		{Cell: "full",
			Run: func(ctx runner.Ctx) (e2eOutcome, error) {
				cfg := fig17FullConfig(s)
				cfg.Chosen = chosenFull
				cfg.Tracer = ctx.Tracer
				cfg.Registry = ctx.Registry
				return runE2E(cfg)
			}},
		{Cell: "rm-only",
			Run: func(runner.Ctx) (e2eOutcome, error) {
				cfg := fig17RMOnlyConfig(s)
				cfg.Chosen = chosenRM
				return runE2E(cfg)
			}},
	}
	out := runner.MustRun(eng, ljobs)
	full, rmOnly := out[0], out[1]
	return Fig17Result{
		FullCPU: full.cpu, FullMem: full.mem,
		RMOnlyCPU: rmOnly.cpu, RMOnlyMem: rmOnly.mem,
	}
}

// ---------------------------------------------------------------------------

// Fig18Result is the end-to-end comparison of Fig. 18: QoS violations,
// CPU time and memory time for the three full frameworks.
type Fig18Result struct {
	Order     []string
	Violation map[string]float64
	CPUTime   map[string]float64
	MemTime   map[string]float64
	ColdRate  map[string]float64
}

// Table renders with the autoscaling framework normalized to 100%.
func (r Fig18Result) Table() string {
	return formatTable(r.Rows())
}

// Rows implements Result.
func (r Fig18Result) Rows() ([]string, [][]string) {
	base := r.Order[0]
	rows := [][]string{}
	for _, name := range r.Order {
		rows = append(rows, []string{
			name,
			pct(r.Violation[name]),
			f0(r.CPUTime[name]/r.CPUTime[base]*100) + "%",
			f0(r.MemTime[name]/r.MemTime[base]*100) + "%",
			pct(r.ColdRate[name]),
		})
	}
	return []string{"Framework", "QoSViol", "CPU(%auto)", "Mem(%auto)", "ColdStart"}, rows
}

// Fig18 runs the three frameworks — Autoscale (pool + RM), the best prior
// combination IceBreaker+CLITE, and the full Aquatope — over all five
// applications and traces. Each framework is one replication; spans and
// metrics flow through the replication contexts and merge in framework
// order, so the span stream reads autoscale, then icebreaker+clite, then
// aquatope — exactly as the old serial loop emitted it.
func Fig18(s Scale) Fig18Result {
	order := []string{"autoscale", "icebreaker+clite", "aquatope"}
	jobs := make([]runner.Job[e2eOutcome], len(order))
	for i, name := range order {
		name := name
		jobs[i] = runner.Job[e2eOutcome]{Cell: name,
			Run: func(ctx runner.Ctx) (e2eOutcome, error) {
				cfg := core.Config{
					Components:   e2eComponents(s),
					TrainMin:     s.TrainMin,
					SearchBudget: s.SearchBudget,
					ProfileNoise: profileNoise,
					RuntimeNoise: runtimeNoise,
					Tracer:       ctx.Tracer,
					Registry:     ctx.Registry,
					Seed:         s.Seed,
				}
				switch name {
				case "autoscale":
					cfg.PoolFactory = core.AutoscalePoolFactory()
					cfg.ManagerFactory = core.AutoscaleManagerFactory()
				case "icebreaker+clite":
					cfg.PoolFactory = core.IceBreakerPoolFactory()
					cfg.ManagerFactory = core.CLITEManagerFactory()
				case "aquatope":
					cfg.PoolFactory = s.aquatopePoolFactory(false)
					cfg.ManagerFactory = core.AquatopeManagerFactory()
				}
				return runE2E(cfg)
			}}
	}
	out := runner.MustRun(s.engine("fig18"), jobs)

	res := Fig18Result{
		Order:     order,
		Violation: make(map[string]float64),
		CPUTime:   make(map[string]float64),
		MemTime:   make(map[string]float64),
		ColdRate:  make(map[string]float64),
	}
	for i, name := range order {
		res.Violation[name] = out[i].violation
		res.CPUTime[name] = out[i].cpu
		res.MemTime[name] = out[i].mem
		res.ColdRate[name] = out[i].cold
	}
	return res
}
