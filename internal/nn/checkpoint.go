package nn

import "aquatope/internal/checkpoint"

// Snapshot serializes the parameter's name and weights. Gradients are
// transient (zeroed by every optimizer step, meaningless between training
// phases) and are excluded; Restore clears them.
func (p *Param) Snapshot(enc *checkpoint.Encoder) {
	enc.String(p.Name)
	enc.F64s(p.W)
}

// Restore loads weights into a structurally identical parameter (same name,
// same size — i.e. the same architecture built from the same config).
func (p *Param) Restore(dec *checkpoint.Decoder) error {
	dec.Expect(p.Name)
	w := dec.F64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(w) != len(p.W) {
		return checkpoint.ErrShape
	}
	copy(p.W, w)
	p.ZeroGrad()
	return nil
}

// SnapshotParams serializes an ordered parameter list (count-prefixed).
func SnapshotParams(enc *checkpoint.Encoder, params []*Param) {
	enc.U64(uint64(len(params)))
	for _, p := range params {
		p.Snapshot(enc)
	}
}

// RestoreParams loads an ordered parameter list serialized by
// SnapshotParams into the same architecture's parameters.
func RestoreParams(dec *checkpoint.Decoder, params []*Param) error {
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != uint64(len(params)) {
		return checkpoint.ErrShape
	}
	for _, p := range params {
		if err := p.Restore(dec); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot serializes the optimizer step count and moment vectors in the
// managed-parameter order. Training in this codebase happens atomically
// inside single scheduler events, so live checkpoints never catch an Adam
// mid-descent — the method exists so any component that does hold a
// long-lived optimizer serializes completely.
func (a *Adam) Snapshot(enc *checkpoint.Encoder) {
	enc.String("adam")
	enc.Int(a.t)
	enc.U64(uint64(len(a.targets)))
	for _, p := range a.targets {
		enc.F64s(a.m[p])
		enc.F64s(a.v[p])
	}
}

// Restore loads optimizer state saved by Snapshot onto the same parameter
// set.
func (a *Adam) Restore(dec *checkpoint.Decoder) error {
	dec.Expect("adam")
	t := dec.Int()
	n := dec.U64()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != uint64(len(a.targets)) {
		return checkpoint.ErrShape
	}
	for _, p := range a.targets {
		m := dec.F64s()
		v := dec.F64s()
		if err := dec.Err(); err != nil {
			return err
		}
		if len(m) != len(p.W) || len(v) != len(p.W) {
			return checkpoint.ErrShape
		}
		copy(a.m[p], m)
		copy(a.v[p], v)
	}
	a.t = t
	return nil
}
