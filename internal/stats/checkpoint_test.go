package stats

import (
	"testing"

	"aquatope/internal/checkpoint"
)

// drawMix exercises every sampler class (uniform, rejection-looped, normal
// ziggurat) so the draw counter is proven to capture multi-draw samplers.
func drawMix(g *RNG, n int) []float64 {
	out := make([]float64, 0, 4*n)
	for i := 0; i < n; i++ {
		out = append(out, g.Float64())
		out = append(out, g.Normal(1, 2))
		out = append(out, g.Exponential(0.5))
		out = append(out, float64(g.Poisson(3)), float64(g.Intn(17)))
		out = append(out, g.Pareto(1, 1.5), g.LogNormal(0, 1))
	}
	return out
}

func TestSnapshotRestoreMidStream(t *testing.T) {
	ref := NewRNG(99)
	drawMix(ref, 50)

	enc := checkpoint.NewEncoder()
	ref.Snapshot(enc)
	want := drawMix(ref, 50)

	got := NewRNG(0) // wrong seed on purpose; Restore must fix it
	if err := got.Restore(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i, w := range drawMix(got, 50) {
		if w != want[i] {
			t.Fatalf("draw %d diverged after restore: %v != %v", i, w, want[i])
		}
	}
}

func TestPosSkipReconstruct(t *testing.T) {
	ref := NewRNG(7)
	drawMix(ref, 20)
	seed, draws := ref.Pos()
	if seed != 7 || draws == 0 {
		t.Fatalf("pos: seed=%d draws=%d", seed, draws)
	}
	clone := NewRNG(seed)
	clone.Skip(draws)
	for i := 0; i < 100; i++ {
		if a, b := ref.Int63(), clone.Int63(); a != b {
			t.Fatalf("draw %d diverged: %d != %d", i, a, b)
		}
	}
}

func TestSnapshotIsReadOnly(t *testing.T) {
	a := NewRNG(3)
	b := NewRNG(3)
	drawMix(a, 10)
	drawMix(b, 10)
	a.Snapshot(checkpoint.NewEncoder())
	for i := 0; i < 50; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("snapshot perturbed the stream at draw %d", i)
		}
	}
}

func TestRestoreRejectsCorrupt(t *testing.T) {
	g := NewRNG(1)
	if err := g.Restore(checkpoint.NewDecoder([]byte{0xFF})); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	enc := checkpoint.NewEncoder()
	enc.String("not-rng")
	enc.I64(1)
	enc.U64(0)
	if err := NewRNG(1).Restore(checkpoint.NewDecoder(enc.Bytes())); err == nil {
		t.Fatal("wrong marker accepted")
	}
}
