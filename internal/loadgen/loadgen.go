// Package loadgen drives workflow traffic into the simulated platform the
// way the paper drives Locust against OpenWhisk (§7.2): an open-loop
// generator replays trace arrival timestamps (exponential inter-arrivals
// within each minute of the source trace), samples per-request inputs and
// fan-out widths from the application, and streams completed results to a
// callback.
package loadgen

import (
	"aquatope/internal/apps"
	"aquatope/internal/stats"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// Driver schedules one application's workload onto an executor.
type Driver struct {
	Executor *workflow.Executor
	App      *apps.App
	Trace    *trace.Trace
	// OnResult receives every completed workflow (may be nil).
	OnResult func(workflow.Result)
	// Seed derives the per-request input/width stream.
	Seed int64

	scheduled int
}

// Start schedules every arrival of the trace on the executor's engine.
// It returns the number of requests scheduled. Call before running the
// engine.
func (d *Driver) Start() int {
	rng := stats.NewRNG(d.Seed)
	eng := d.Executor.Cluster.Engine()
	for _, at := range d.Trace.Arrivals {
		at := at
		eng.Schedule(at, func() {
			input := d.App.Input(rng)
			widths := d.App.Widths(rng)
			err := d.Executor.Execute(d.App.DAG, input, widths, d.OnResult)
			if err != nil {
				panic(err)
			}
		})
		d.scheduled++
	}
	return d.scheduled
}

// Scheduled returns how many requests Start scheduled.
func (d *Driver) Scheduled() int { return d.scheduled }

// OpenLoopPoisson generates a fresh trace with Poisson arrivals at the
// given per-minute rate — the paper's per-minute Poisson regeneration for
// traces that only provide counts.
func OpenLoopPoisson(counts []float64, seed int64) *trace.Trace {
	rng := stats.NewRNG(seed)
	tr := &trace.Trace{DurationMin: len(counts)}
	for m, c := range counts {
		if c <= 0 {
			continue
		}
		// Exponential inter-arrival times within the minute.
		rate := c / 60
		t := float64(m) * 60
		for {
			t += rng.Exponential(rate)
			if t >= float64(m+1)*60 {
				break
			}
			tr.Arrivals = append(tr.Arrivals, t)
		}
	}
	return tr
}

// ScaleToUtilization thins or replicates a trace so that the implied mean
// CPU demand stays below the target fraction of cluster capacity — the
// paper caps utilization at 70% (§7.2).
func ScaleToUtilization(tr *trace.Trace, meanExecSec, cpuPerRequest, clusterCPU, target float64, seed int64) *trace.Trace {
	if target <= 0 || clusterCPU <= 0 || len(tr.Arrivals) == 0 {
		return tr
	}
	horizon := float64(tr.DurationMin) * 60
	if horizon <= 0 {
		return tr
	}
	ratePerSec := float64(len(tr.Arrivals)) / horizon
	demand := ratePerSec * meanExecSec * cpuPerRequest
	if demand <= target*clusterCPU {
		return tr
	}
	factor := target * clusterCPU / demand
	return tr.ScaleRate(factor, seed)
}
