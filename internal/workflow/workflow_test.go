package workflow

import (
	"math"
	"testing"

	"aquatope/internal/faas"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
)

type fixedModel struct{ init, exec float64 }

func (m *fixedModel) InitTime(cfg faas.ResourceConfig, rng *stats.RNG) float64 { return m.init }
func (m *fixedModel) ExecTime(cfg faas.ResourceConfig, cold bool, inputSize float64, rng *stats.RNG) float64 {
	return m.exec * inputSize
}
func (m *fixedModel) BaseMemoryMB() float64 { return 64 }

func setup(t *testing.T, fns map[string]*fixedModel) (*sim.Engine, *faas.Cluster, *Executor) {
	t.Helper()
	eng := sim.NewEngine()
	cl := faas.NewCluster(eng, faas.Config{Invokers: 2, CPUPerInvoker: 16, MemoryPerInvokerMB: 1 << 20, Seed: 1})
	for name, m := range fns {
		if err := cl.RegisterFunction(faas.FunctionSpec{Name: name, Model: m}, faas.ResourceConfig{CPU: 1, MemoryMB: 128}); err != nil {
			t.Fatal(err)
		}
	}
	return eng, cl, NewExecutor(cl)
}

func TestChainTopology(t *testing.T) {
	d := Chain("c", "f1", "f2", "f3")
	if len(d.Stages()) != 3 {
		t.Fatalf("stages = %d", len(d.Stages()))
	}
	fns := d.Functions()
	if len(fns) != 3 || fns[0] != "f1" || fns[2] != "f3" {
		t.Fatalf("functions = %v", fns)
	}
}

// TestDAGQueryAllocations pins the hotalloc sweep fix: Functions and
// StageNames preallocate their result slices (len(stages) and
// len(PerStage) are exact caps), so each is a single allocation instead
// of a geometric append-growth chain. These run per executed workflow in
// reporting paths, so the bound matters at fleet scale.
func TestDAGQueryAllocations(t *testing.T) {
	d := Chain("c", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8")
	if got := testing.AllocsPerRun(200, func() { _ = d.Functions() }); got > 2 {
		t.Errorf("Functions allocates %.0f times per call, want <= 2 (preallocated result)", got)
	}
	per := make(map[string][]faas.InvocationResult)
	for _, s := range d.Stages() {
		per[s.Name] = nil
	}
	r := Result{PerStage: per}
	if got := testing.AllocsPerRun(200, func() { _ = r.StageNames() }); got > 2 {
		t.Errorf("StageNames allocates %.0f times per call, want <= 2 (preallocated result)", got)
	}
}

func TestChainExecutesSequentially(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{
		"f1": {init: 0, exec: 1},
		"f2": {init: 0, exec: 2},
		"f3": {init: 0, exec: 3},
	})
	d := Chain("c", "f1", "f2", "f3")
	var res *Result
	if err := ex.Execute(d, 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res == nil {
		t.Fatal("workflow never completed")
	}
	if math.Abs(res.Latency()-6) > 1e-9 {
		t.Fatalf("latency = %v, want 6 (1+2+3)", res.Latency())
	}
	if res.Invocations != 3 {
		t.Fatalf("invocations = %d", res.Invocations)
	}
}

func TestFanOutRunsInParallel(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{
		"src":  {exec: 1},
		"b1":   {exec: 5},
		"b2":   {exec: 5},
		"sink": {exec: 1},
	})
	d := FanOutFanIn("f", "src", []string{"b1", "b2"}, "sink")
	var res *Result
	if err := ex.Execute(d, 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 1 (src) + 5 (parallel branches) + 1 (sink) = 7, not 12.
	if math.Abs(res.Latency()-7) > 1e-9 {
		t.Fatalf("latency = %v, want 7", res.Latency())
	}
}

func TestStageWidthFansOut(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{"w": {exec: 2}})
	d, err := NewDAG("wide", []Stage{{Name: "s", Function: "w", Width: 4}})
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	if err := ex.Execute(d, 1, nil, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if res.Invocations != 4 {
		t.Fatalf("invocations = %d, want 4", res.Invocations)
	}
	if math.Abs(res.Latency()-2) > 1e-9 {
		t.Fatalf("parallel width latency = %v, want 2", res.Latency())
	}
	if len(res.PerStage["s"]) != 4 {
		t.Fatalf("stage results = %d", len(res.PerStage["s"]))
	}
}

func TestWidthOverridePerRequest(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{"w": {exec: 1}})
	d, _ := NewDAG("wide", []Stage{{Name: "s", Function: "w", Width: 1}})
	var res *Result
	ex.Execute(d, 1, map[string]int{"s": 7}, func(r Result) { res = &r })
	eng.Run()
	if res.Invocations != 7 {
		t.Fatalf("override width invocations = %d, want 7", res.Invocations)
	}
}

func TestInputScale(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{"f": {exec: 1}})
	d, _ := NewDAG("s", []Stage{{Name: "s", Function: "f", InputScale: 3}})
	var res *Result
	ex.Execute(d, 2, nil, func(r Result) { res = &r })
	eng.Run()
	// exec = 1 * input(2*3) = 6.
	if math.Abs(res.Latency()-6) > 1e-9 {
		t.Fatalf("latency = %v, want 6", res.Latency())
	}
}

func TestCascadingColdStarts(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{
		"f1": {init: 2, exec: 1},
		"f2": {init: 2, exec: 1},
	})
	d := Chain("c", "f1", "f2")
	var res *Result
	ex.Execute(d, 1, nil, func(r Result) { res = &r })
	eng.Run()
	if res.ColdStarts != 2 {
		t.Fatalf("cold starts = %d, want 2 (cascading)", res.ColdStarts)
	}
	// Latency includes both inits: (2+1) + (2+1) = 6.
	if math.Abs(res.Latency()-6) > 1e-9 {
		t.Fatalf("latency = %v, want 6", res.Latency())
	}
}

func TestCycleDetection(t *testing.T) {
	_, err := NewDAG("bad", []Stage{
		{Name: "a", Function: "f", Deps: []string{"b"}},
		{Name: "b", Function: "f", Deps: []string{"a"}},
	})
	if err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestUnknownDependency(t *testing.T) {
	_, err := NewDAG("bad", []Stage{{Name: "a", Function: "f", Deps: []string{"ghost"}}})
	if err == nil {
		t.Fatal("unknown dep not detected")
	}
}

func TestDuplicateStageNames(t *testing.T) {
	_, err := NewDAG("bad", []Stage{
		{Name: "a", Function: "f"},
		{Name: "a", Function: "g"},
	})
	if err == nil {
		t.Fatal("duplicate stage not detected")
	}
}

func TestEmptyStageName(t *testing.T) {
	_, err := NewDAG("bad", []Stage{{Function: "f"}})
	if err == nil {
		t.Fatal("empty name not detected")
	}
}

func TestExecuteUnknownFunction(t *testing.T) {
	_, _, ex := setup(t, map[string]*fixedModel{"known": {exec: 1}})
	d := Chain("c", "missing")
	if err := ex.Execute(d, 1, nil, nil); err == nil {
		t.Fatal("expected unknown-function error")
	}
}

func TestCostAccounting(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{"f": {exec: 2}})
	d := Chain("c", "f")
	var res *Result
	ex.Execute(d, 1, nil, func(r Result) { res = &r })
	eng.Run()
	// CPU 1 × 2s = 2 core-s; 128MB = 0.125GB × 2s = 0.25 GB-s.
	if math.Abs(res.CPUTime()-2) > 1e-9 {
		t.Fatalf("CPUTime = %v", res.CPUTime())
	}
	if math.Abs(res.MemTime()-0.25) > 1e-9 {
		t.Fatalf("MemTime = %v", res.MemTime())
	}
	if math.Abs(res.Cost(1, 1)-2.25) > 1e-9 {
		t.Fatalf("Cost = %v", res.Cost(1, 1))
	}
	if names := res.StageNames(); len(names) != 1 || names[0] != "s0" {
		t.Fatalf("StageNames = %v", names)
	}
}

func TestConcurrentWorkflows(t *testing.T) {
	eng, _, ex := setup(t, map[string]*fixedModel{"f": {exec: 1}})
	d := Chain("c", "f")
	count := 0
	for i := 0; i < 10; i++ {
		ex.Execute(d, 1, nil, func(r Result) { count++ })
	}
	eng.Run()
	if count != 10 {
		t.Fatalf("completed %d, want 10", count)
	}
}
