package faas

import (
	"math"
	"testing"

	"aquatope/internal/telemetry"
)

func TestMetricsRecord(t *testing.T) {
	m := NewMetrics()
	m.record(InvocationResult{
		ColdStart: true, SubmitTime: 0, StartTime: 1, EndTime: 3,
		WaitTime: 1, ExecTime: 2, CPU: 2, MemoryMB: 1024,
	})
	m.record(InvocationResult{
		ColdStart: false, SubmitTime: 3, StartTime: 3, EndTime: 4,
		WaitTime: 0, ExecTime: 1, CPU: 2, MemoryMB: 1024,
	})
	if m.ColdStarts() != 1 || m.WarmStarts() != 1 || m.Invocations() != 2 {
		t.Fatalf("counts: cold=%d warm=%d", m.ColdStarts(), m.WarmStarts())
	}
	// CPU time: 2×2 + 2×1 = 6 core-s; mem time: 1GB×2 + 1GB×1 = 3 GB-s.
	if math.Abs(m.CPUTime()-6) > 1e-9 {
		t.Fatalf("CPUTime = %v, want 6", m.CPUTime())
	}
	if math.Abs(m.MemTime()-3) > 1e-9 {
		t.Fatalf("MemTime = %v, want 3", m.MemTime())
	}
	if len(m.Results) != 2 {
		t.Fatalf("Results retained %d, want 2", len(m.Results))
	}
	h := m.LatencyHistogram()
	if h.Count() != 2 {
		t.Fatalf("latency histogram count = %d, want 2", h.Count())
	}
	// Latencies 3 and 1: sum must match exactly (sum is not bucketed).
	if math.Abs(h.Sum()-4) > 1e-9 {
		t.Fatalf("latency sum = %v, want 4", h.Sum())
	}
}

func TestMetricsRecordDropsResultsWhenDisabled(t *testing.T) {
	m := NewMetrics()
	m.KeepResults = false
	m.record(InvocationResult{ExecTime: 1})
	if len(m.Results) != 0 {
		t.Fatal("Results retained despite KeepResults=false")
	}
	if m.Invocations() != 1 {
		t.Fatal("counter should still record")
	}
}

func TestMetricsContainerDiedGBs(t *testing.T) {
	m := NewMetrics()
	// 2048 MB alive for 10 s → 2 GB × 10 s = 20 GB-s.
	m.containerDied(2048, 10)
	if math.Abs(m.ProvisionedMemTime()-20) > 1e-9 {
		t.Fatalf("ProvisionedMemTime = %v, want 20", m.ProvisionedMemTime())
	}
	if m.ContainersKilled() != 1 {
		t.Fatalf("ContainersKilled = %d, want 1", m.ContainersKilled())
	}
	// Zero and negative lifetimes add no memory-time but still count the kill.
	m.containerDied(2048, 0)
	m.containerDied(2048, -1)
	if math.Abs(m.ProvisionedMemTime()-20) > 1e-9 {
		t.Fatalf("non-positive lifetime added memory-time: %v", m.ProvisionedMemTime())
	}
	if m.ContainersKilled() != 3 {
		t.Fatalf("ContainersKilled = %d, want 3", m.ContainersKilled())
	}
}

func TestMetricsColdStartRateEdges(t *testing.T) {
	m := NewMetrics()
	if r := m.ColdStartRate(); r != 0 {
		t.Fatalf("empty rate = %v, want 0", r)
	}
	m.record(InvocationResult{ColdStart: true})
	if r := m.ColdStartRate(); r != 1 {
		t.Fatalf("all-cold rate = %v, want 1", r)
	}
	for i := 0; i < 3; i++ {
		m.record(InvocationResult{ColdStart: false})
	}
	if r := m.ColdStartRate(); math.Abs(r-0.25) > 1e-12 {
		t.Fatalf("rate = %v, want 0.25", r)
	}
}

func TestMetricsResetPreservesKeepResults(t *testing.T) {
	m := NewMetrics()
	m.KeepResults = false
	m.record(InvocationResult{ColdStart: true, ExecTime: 1, CPU: 1, MemoryMB: 512})
	m.containerCreated()
	m.containerDied(512, 5)
	m.Reset()
	if m.KeepResults {
		t.Fatal("Reset flipped KeepResults")
	}
	if m.Invocations() != 0 || m.ColdStarts() != 0 || m.ContainersCreated() != 0 ||
		m.ContainersKilled() != 0 || m.CPUTime() != 0 || m.MemTime() != 0 ||
		m.ProvisionedMemTime() != 0 || len(m.Results) != 0 {
		t.Fatal("Reset left residual state")
	}
	if m.LatencyHistogram().Count() != 0 {
		t.Fatal("Reset left histogram observations")
	}
	// The registry binding survives: new records land in the same snapshot.
	m.record(InvocationResult{ColdStart: false})
	if m.Registry().Snapshot().Counters["faas.warm_starts"] != 1 {
		t.Fatal("registry binding lost after Reset")
	}
}

func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMetricsOn(reg)
	if m.Registry() != reg {
		t.Fatal("Registry() should return the shared registry")
	}
	m.record(InvocationResult{ColdStart: true})
	if reg.Snapshot().Counters["faas.cold_starts"] != 1 {
		t.Fatal("record did not reach the shared registry")
	}
}
