package sched

import (
	"aquatope/internal/bo"
	"aquatope/internal/pool"
	"aquatope/internal/resource"
	"aquatope/internal/trace"
)

func init() {
	Register("aquatope",
		"hybrid Bayesian-LSTM pool sizing with uncertainty headroom + customized-BO container tuning (the paper's brain)",
		func(o Options) Scheduler {
			o.Lite = false
			return &scheduler{
				name: "aquatope",
				desc: Describe("aquatope"),
				pool: &bnnPool{name: "aquatope", opts: o},
				conf: &boConf{name: "aquatope", opts: o, build: func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
					b := o.BO
					b.QoS = qos
					b.Seed = seed
					return resource.NewBO("aquatope", space, prof, b)
				}},
			}
		})
	Register("aqualite",
		"uncertainty-unaware ablation of aquatope: same BNN/BO machinery without headroom or anomaly pruning",
		func(o Options) Scheduler {
			o.Lite = true
			return &scheduler{
				name: "aqualite",
				desc: Describe("aqualite"),
				pool: &bnnPool{name: "aqualite", opts: o},
				conf: &boConf{name: "aqualite", opts: o, build: func(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
					b := o.BO
					b.QoS = qos
					b.Seed = seed
					b.Acquisition = bo.EI
					b.DisableAnomalyDetection = true
					return resource.NewBO("aqualite", space, prof, b)
				}},
			}
		})
}

func intOr(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

func floatOr(v, def float64) float64 {
	if v <= 0 {
		return def
	}
	return v
}

// bnnPool builds the paper's hybrid-BNN pool policy per function. The
// zero-value Options reproduce cmd/aquatope's model shape exactly (the
// byte-identity bar for the default scheduler).
type bnnPool struct {
	name string
	opts Options
}

func (p *bnnPool) Name() string { return p.name }

// Policy implements PoolSizer.
func (p *bnnPool) Policy(string) pool.Policy {
	o := p.opts
	cfg := pool.DefaultModelConfig(trace.FeatureDim)
	cfg.EncoderHidden = intOr(o.EncoderHidden, 20)
	cfg.PredHidden = o.PredHidden
	if len(cfg.PredHidden) == 0 {
		cfg.PredHidden = []int{20, 10}
	}
	cfg.EncoderEpochs = intOr(o.EncoderEpochs, 8)
	cfg.PredEpochs = intOr(o.PredEpochs, 24)
	cfg.MCSamples = intOr(o.MCSamples, 12)
	cfg.LR = floatOr(o.LR, 0.01)
	pol := &pool.Aquatope{
		ModelConfig:     cfg,
		Window:          intOr(o.Window, 40),
		HeadroomZ:       floatOr(o.HeadroomZ, 2.5),
		MaxTrainSamples: o.MaxTrainSamples,
		Lite:            o.Lite,
	}
	return meterPolicy(pol, o.Meter)
}

// boConf adapts the existing BO resource managers to the Configurator
// interface, adding meter accounting when armed.
type boConf struct {
	name  string
	opts  Options
	build func(*resource.Space, *resource.Profiler, float64, int64) resource.Manager
}

func (c *boConf) Name() string { return c.name }

// Manager implements Configurator.
func (c *boConf) Manager(space *resource.Space, prof *resource.Profiler, qos float64, seed int64) resource.Manager {
	m := c.build(space, prof, qos, seed)
	if c.opts.Meter == nil {
		return m
	}
	return meteredManager{Manager: m, meter: c.opts.Meter}
}
