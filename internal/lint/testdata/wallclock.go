// Package fixture exercises the wallclock analyzer: simulation-driven
// code must take time from the engine's virtual clock, never the host's.
package fixture

import "time"

func wallclockPositives() {
	_ = time.Now()                 // want wallclock
	time.Sleep(time.Second)        // want wallclock
	start := time.Now()            // want wallclock
	_ = time.Since(start)          // want wallclock
	_ = time.After(time.Second)    // want wallclock
	_ = time.NewTimer(time.Second) // want wallclock
}

func wallclockNegatives() {
	// Pure time arithmetic and construction are simulation-safe: they do
	// not read the host clock.
	d := 3 * time.Second
	_ = d.Seconds()
	_ = time.Unix(0, 0)
	_ = time.Duration(42)
}

func wallclockAllowed() {
	_ = time.Now() //aqualint:allow wallclock fixture demonstrating the trailing escape hatch
	//aqualint:allow wallclock fixture demonstrating the standalone escape hatch
	_ = time.Now()
}
