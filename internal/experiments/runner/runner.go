// Package runner is the parallel replication engine behind the evaluation
// harness. Every experiment in internal/experiments reduces to a batch of
// independent simulator runs (seeds × policies × configurations); the engine
// fans one batch out across a worker pool while keeping the observable
// output byte-identical to a serial run:
//
//   - every replication gets a private seed from a stable
//     (experiment, cell, rep) mapping (or an explicitly pinned one), so the
//     randomness a replication sees never depends on goroutine scheduling;
//   - every replication records telemetry into its own Collector and
//     Registry, which the engine merges into the destination in submission
//     order once the whole batch has finished;
//   - results are collected by index, so aggregation code sees them in the
//     order the jobs were built, exactly as the old serial loops did.
//
// A panicking replication is recovered and surfaced as an error on the
// batch — one bad worker never deadlocks the pool. The engine also keeps
// per-experiment wall/busy timing (see Bench) which cmd/aquabench exports
// as the repo's performance trajectory.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"aquatope/internal/telemetry"
)

// Ctx is the per-replication context handed to each job.
type Ctx struct {
	// Seed is the replication's private seed: the job's pinned Seed when
	// set, otherwise DeriveSeed(base, experiment, cell, rep).
	Seed int64
	// Tracer receives the replication's spans. It is never nil: when the
	// engine has no destination collector this is the Nop tracer.
	Tracer telemetry.Tracer
	// Registry receives the replication's metrics; nil (which every
	// registry method tolerates) when the engine has no destination.
	Registry *telemetry.Registry
}

// Job is one independent replication in a batch.
type Job[T any] struct {
	// Cell labels the sweep cell this replication belongs to (policy
	// name, fault rate, app — whatever the experiment sweeps); it feeds
	// seed derivation and error messages.
	Cell string
	// Rep is the repetition index within the cell.
	Rep int
	// Seed, when non-zero, pins the replication seed instead of deriving
	// it. The established harnesses pin their historical seed formulas so
	// published EXPERIMENTS.md numbers stay reproducible.
	Seed int64
	// Run executes the replication. It must be self-contained: construct
	// apps, traces and profilers inside the job (or share only immutable
	// data), never mutate state owned by another job.
	Run func(Ctx) (T, error)
}

// Engine runs batches of replications for one experiment.
type Engine struct {
	// Experiment is the experiment id, used in seed derivation, error
	// messages and Bench accounting.
	Experiment string
	// Parallel is the worker count: 0 (or negative) means
	// runtime.GOMAXPROCS(0), 1 forces a serial run.
	Parallel int
	// BaseSeed feeds DeriveSeed for jobs without a pinned seed.
	BaseSeed int64
	// Collector, when non-nil, receives every replication's spans, merged
	// in submission order after the batch completes.
	Collector *telemetry.Collector
	// Registry, when non-nil, receives every replication's metrics,
	// merged in submission order after the batch completes.
	Registry *telemetry.Registry
	// Bench, when non-nil, accumulates the engine's timing.
	Bench *Bench
}

// Workers returns the effective worker count.
func (e *Engine) Workers() int {
	if e.Parallel > 0 {
		return e.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes one batch and returns the results in job order. All jobs run
// to completion even when some fail; the returned error joins every
// replication failure (including recovered panics) in job order. An Engine
// may run several batches sequentially (multi-phase experiments), but a
// single Engine must not run batches concurrently — telemetry merge order
// would no longer be well-defined.
func Run[T any](e *Engine, jobs []Job[T]) ([]T, error) {
	n := len(jobs)
	if n == 0 {
		return nil, nil
	}
	workers := e.Workers()
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)
	busy := make([]float64, n)
	var collectors []*telemetry.Collector
	if e.Collector != nil {
		collectors = make([]*telemetry.Collector, n)
	}
	var registries []*telemetry.Registry
	if e.Registry != nil {
		registries = make([]*telemetry.Registry, n)
	}

	start := time.Now() //aqualint:allow wallclock the engine reports real harness wall time, not simulated time
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				jobStart := time.Now() //aqualint:allow wallclock per-replication busy time for the speedup report
				ctx := Ctx{Seed: jobs[i].Seed, Tracer: telemetry.Nop{}}
				if ctx.Seed == 0 {
					ctx.Seed = DeriveSeed(e.BaseSeed, e.Experiment, jobs[i].Cell, jobs[i].Rep)
				}
				if collectors != nil {
					c := telemetry.NewCollector()
					collectors[i] = c
					ctx.Tracer = c
				}
				if registries != nil {
					registries[i] = telemetry.NewRegistry()
					ctx.Registry = registries[i]
				}
				results[i], errs[i] = runOne(jobs[i], ctx)
				busy[i] = time.Since(jobStart).Seconds() //aqualint:allow wallclock per-replication busy time for the speedup report
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start).Seconds() //aqualint:allow wallclock the engine reports real harness wall time, not simulated time

	// Merge per-replication telemetry in submission order: this, plus the
	// scheduling-independent seeds, is why -parallel 1 and -parallel N
	// produce byte-identical span streams and metric snapshots.
	for i := 0; i < n; i++ {
		if collectors != nil {
			e.Collector.Merge(collectors[i])
		}
		if registries != nil {
			e.Registry.Merge(registries[i])
		}
	}

	var totalBusy float64
	for _, d := range busy {
		totalBusy += d
	}
	e.Bench.Record(e.Experiment, n, wall, totalBusy)

	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("replication %s/%s#%d: %w",
				e.Experiment, jobs[i].Cell, jobs[i].Rep, err))
		}
	}
	return results, errors.Join(failures...)
}

// MustRun is Run for harnesses that follow the experiments package's
// panic-on-failure convention.
func MustRun[T any](e *Engine, jobs []Job[T]) []T {
	out, err := Run(e, jobs)
	if err != nil {
		panic(err)
	}
	return out
}

// runOne executes a single job, converting a panic into an error so one bad
// replication cannot take down the worker pool.
func runOne[T any](job Job[T], ctx Ctx) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return job.Run(ctx)
}

// DeriveSeed maps (base, experiment, cell, rep) to a replication seed that
// is stable across runs and independent of scheduling: FNV-1a over the
// identifying strings, mixed with the base seed and finalized with
// splitmix64 so adjacent reps land far apart in seed space. The result is
// always positive.
func DeriveSeed(base int64, experiment, cell string, rep int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // separator: ("ab","c") must differ from ("a","bc")
		h *= prime64
	}
	mix(experiment)
	mix(cell)
	x := h ^ (uint64(rep)+1)*0x9E3779B97F4A7C15 ^ uint64(base)*0xD1B54A32D192ED03
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	seed := int64(x & 0x7FFFFFFFFFFFFFFF)
	if seed == 0 {
		seed = 1
	}
	return seed
}
