package serve

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"aquatope/internal/apps"
	"aquatope/internal/chaos"
	"aquatope/internal/checkpoint"
	"aquatope/internal/core"
	"aquatope/internal/faas"
	"aquatope/internal/pool"
	"aquatope/internal/sched"
	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
	"aquatope/internal/trace"
	"aquatope/internal/workflow"
)

// ErrCrashed is returned by Run when a scripted KindCrash fault kills the
// controller: the process is expected to exit without flushing dumps,
// leaving the last boundary checkpoint and the durable journal as the only
// survivors.
var ErrCrashed = errors.New("serve: controller crash fault fired")

// ErrStopped is returned by Run after RequestStop: a final checkpoint was
// flushed and the caller should write its usual trace/metrics dumps.
var ErrStopped = errors.New("serve: stopped by request")

// crashSentinel is panicked by the KindCrash hook so the kill unwinds out
// of the event loop without running any deferred flushing.
type crashSentinel struct{}

// Options parameterizes a serving run. Every field that shapes the
// trajectory is folded into the config digest: a checkpoint only restores
// against bit-identical options, because restore re-derives all state by
// replaying the journal through a server built from them.
type Options struct {
	// Apps are the served applications; stream records address them by
	// name.
	Apps []*apps.App
	// TrainMin is the training prefix (minutes), as in core.Config.
	TrainMin int
	// HorizonMin is the virtual horizon: boundaries stop there and the
	// run finalizes after draining in-flight work.
	HorizonMin int
	// IntervalSec is the decision/checkpoint interval (default 60,
	// matching pool.Manager).
	IntervalSec float64
	// DrainSec extends the final RunUntil so in-flight workflows finish
	// (default 300, matching core.Run).
	DrainSec float64

	// PoolFactory/ManagerFactory/Scheduler select the scheduler halves
	// exactly as core.Config does.
	PoolFactory    core.PolicyFactory
	ManagerFactory core.ManagerFactory
	Scheduler      sched.Scheduler
	// Meter, when non-nil, accrues decision-work accounting and is
	// included in checkpoints.
	Meter *sched.Meter

	SearchBudget      int
	ProfileNoise      faas.Noise
	RuntimeNoise      faas.Noise
	ColdStartFraction float64
	ClusterCfg        faas.Config
	// Chosen injects pre-searched configurations and skips phase-1 search.
	Chosen map[string]map[string]faas.ResourceConfig

	Chaos chaos.Scenario
	// ArmCrash registers the KindCrash hook so a scripted controller kill
	// actually unwinds the run (Run returns ErrCrashed). Reference and
	// restored runs leave it false: the fault event still fires — keeping
	// engine sequence numbers identical — but is inert.
	ArmCrash   bool
	Resilience *workflow.RetryPolicy
	PoolGuard  *pool.Guard

	// Tracer collects spans (nil = tracing off); Registry collects
	// metrics (nil = private registry).
	Tracer   *telemetry.Collector
	Registry *telemetry.Registry

	// CheckpointDir enables journaling + checkpointing; empty disables
	// both (pure streaming mode). The journal lives at
	// CheckpointDir/stream.jsonl, checkpoints at
	// CheckpointDir/checkpoint-NNNNNN.aqcp.
	CheckpointDir string

	// TriggerType/StartMinute shape the per-minute feature vector of the
	// incrementally built trace (see trace.Features).
	TriggerType int
	StartMinute int

	// Pace throttles ingest to wall time: 1 plays one virtual second per
	// wall second, 2 at double speed, 0 as fast as possible. Pacing is
	// the serving loop's only wall-clock surface.
	Pace float64

	Seed int64
}

func (o Options) intervalSec() float64 {
	if o.IntervalSec <= 0 {
		return 60
	}
	return o.IntervalSec
}

func (o Options) drainSec() float64 {
	if o.DrainSec <= 0 {
		return 300
	}
	return o.DrainSec
}

// Digest canonically fingerprints every option that shapes the run
// trajectory. Checkpoints embed it; Restore refuses a mismatch, because
// replaying a journal through a differently-configured server would
// diverge silently instead.
func (o Options) Digest() string {
	h := sha256.New()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	w("seed=%d interval=%g train=%d horizon=%d drain=%g trigger=%d startmin=%d pace-excluded\n",
		o.Seed, o.intervalSec(), o.TrainMin, o.HorizonMin, o.drainSec(), o.TriggerType, o.StartMinute)
	for _, a := range o.Apps {
		w("app=%s qos=%g fns=%d\n", a.Name, a.QoS, len(a.FunctionNames()))
	}
	w("chaos=%s faults=%d armed-excluded\n", o.Chaos.Name, len(o.Chaos.Faults))
	for _, f := range o.Chaos.Faults {
		w("fault=%s at=%g dur=%g inv=%d rate=%g factor=%g fn=%s init=%g kill=%g\n",
			f.Kind, f.At, f.Duration, f.Invoker, f.Rate, f.Factor, f.Function,
			f.Rates.InitFailure, f.Rates.ExecKill)
	}
	w("resilience=%v guard=%v budget=%d coldfrac=%g\n",
		o.Resilience != nil, o.PoolGuard != nil, o.SearchBudget, o.ColdStartFraction)
	w("profnoise=%+v runnoise=%+v\n", o.ProfileNoise, o.RuntimeNoise)
	w("cluster=inv:%d cpu:%g mem:%g keep:%g queue:%d seed:%d\n",
		o.ClusterCfg.Invokers, o.ClusterCfg.CPUPerInvoker, o.ClusterCfg.MemoryPerInvokerMB,
		o.ClusterCfg.DefaultKeepAlive, o.ClusterCfg.QueueLimit, o.ClusterCfg.Seed)
	if o.Scheduler != nil {
		w("scheduler=%s\n", o.Scheduler.Name())
	}
	w("tracing=%v\n", o.Tracer != nil)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// appStats mirrors core.Run's per-app accounting so a serving run reports
// the same AppResult and feeds the same registry histogram.
type appStats struct {
	res  core.AppResult
	qos  float64
	lats []float64
	hist *telemetry.Histogram
}

// Server is one live serving run over a record stream.
type Server struct {
	opts   Options
	eng    *sim.Engine
	cl     *faas.Cluster
	ex     *workflow.Executor
	mgr    *pool.Manager
	inj    *chaos.Injector
	reg    *telemetry.Registry
	col    *telemetry.Collector
	tracer telemetry.Tracer

	appsByName map[string]*apps.App
	appNames   []string // sorted
	rngs       map[string]*stats.RNG
	traces     map[string]*trace.Trace
	stats      map[string]*appStats
	chosen     map[string]map[string]faas.ResourceConfig

	journal    *Journal
	replaying  bool
	verifyFile *checkpoint.File // during replay: checkpoint to verify
	verifyAtK  int              // boundary to verify at (-1: at journal exhaustion)
	verified   bool

	trainCut     float64
	horizon      float64
	nextBoundary float64
	k            int // completed boundaries
	ingested     int // records scheduled
	lastT        float64
	provBase     float64
	stop         atomic.Bool
	digest       string
}

// New builds a serving run: it performs the phase-1 resource search (unless
// Options.Chosen injects one), constructs the live cluster, executor, pool
// manager and chaos injector exactly as core.Run does, and schedules the
// policy Fit at the training boundary. No events run until ingest starts.
func New(opts Options) (*Server, error) {
	if len(opts.Apps) == 0 {
		return nil, fmt.Errorf("serve: no applications")
	}
	if opts.TrainMin <= 0 {
		return nil, fmt.Errorf("serve: TrainMin must be positive")
	}
	if opts.HorizonMin <= 0 {
		return nil, fmt.Errorf("serve: HorizonMin must be positive")
	}
	if opts.Scheduler != nil {
		if opts.PoolFactory != nil || opts.ManagerFactory != nil {
			return nil, fmt.Errorf("serve: Scheduler is mutually exclusive with PoolFactory/ManagerFactory")
		}
		if ps := opts.Scheduler.PoolSizer(); ps != nil {
			opts.PoolFactory = ps.Policy
		}
		if c := opts.Scheduler.Configurator(); c != nil {
			opts.ManagerFactory = c.Manager
		}
	}
	var rawTracer telemetry.Tracer
	if opts.Tracer != nil {
		rawTracer = opts.Tracer
	}
	tracer := telemetry.OrNop(rawTracer)
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	s := &Server{
		opts:       opts,
		reg:        reg,
		col:        opts.Tracer,
		tracer:     tracer,
		appsByName: make(map[string]*apps.App),
		rngs:       make(map[string]*stats.RNG),
		traces:     make(map[string]*trace.Trace),
		stats:      make(map[string]*appStats),
		trainCut:   float64(opts.TrainMin) * 60,
		horizon:    float64(opts.HorizonMin) * 60,
		digest:     opts.Digest(),
	}
	s.nextBoundary = opts.intervalSec()

	// Phase 1: resource search, exactly as core.Run (same seed stream).
	coreCfg := core.Config{
		TrainMin:          opts.TrainMin,
		ManagerFactory:    opts.ManagerFactory,
		SearchBudget:      opts.SearchBudget,
		ProfileNoise:      opts.ProfileNoise,
		ColdStartFraction: opts.ColdStartFraction,
		Seed:              opts.Seed,
	}
	for _, a := range opts.Apps {
		coreCfg.Components = append(coreCfg.Components, core.Component{App: a})
	}
	s.chosen = opts.Chosen
	if s.chosen == nil {
		seeds := core.SearchSeeds(coreCfg)
		s.chosen = make(map[string]map[string]faas.ResourceConfig)
		for i, comp := range coreCfg.Components {
			s.chosen[comp.App.Name] = core.SearchComponent(coreCfg, i, seeds[i], tracer)
		}
	}

	// Phase 2: live cluster.
	s.eng = sim.NewEngine()
	s.eng.SetMetrics(reg)
	ccfg := opts.ClusterCfg
	ccfg.Noise = opts.RuntimeNoise
	ccfg.Registry = reg
	if ccfg.Seed == 0 {
		ccfg.Seed = opts.Seed + 1
	}
	s.cl = faas.NewCluster(s.eng, ccfg)
	s.cl.SetTracer(tracer)
	for _, a := range opts.Apps {
		if err := a.Register(s.cl); err != nil {
			return nil, err
		}
		for fn, rc := range s.chosen[a.Name] {
			if err := s.cl.SetResourceConfig(fn, rc); err != nil {
				return nil, err
			}
		}
	}
	s.ex = workflow.NewExecutor(s.cl)
	s.ex.Policy = opts.Resilience
	s.ex.Seed = opts.Seed + 7919
	if !opts.Chaos.Empty() {
		s.inj = chaos.New(s.cl, opts.Chaos)
		if opts.ArmCrash {
			s.inj.SetOnCrash(func() { panic(crashSentinel{}) })
		}
		s.inj.Arm()
	}

	if tracer.Enabled() {
		for _, a := range opts.Apps {
			tracer.Point(telemetry.KindRunMeta, a.Name, 0, 0, telemetry.Fields{
				"qos":      a.QoS,
				"train_s":  s.trainCut,
				"invokers": float64(len(s.cl.Invokers())),
			})
		}
	}

	// Per-app request streams and incrementally built traces. Seeds match
	// core.Run's drivers (cfg.Seed + running app count); draw order is
	// preserved because draws happen at event execution time.
	for i, a := range opts.Apps {
		s.appsByName[a.Name] = a
		s.appNames = append(s.appNames, a.Name)
		s.rngs[a.Name] = stats.NewRNG(opts.Seed + int64(i+1))
		s.traces[a.Name] = &trace.Trace{
			DurationMin: opts.HorizonMin,
			TriggerType: opts.TriggerType,
			StartMinute: opts.StartMinute,
		}
		s.stats[a.Name] = &appStats{
			res:  core.AppResult{ChosenConfig: s.chosen[a.Name]},
			qos:  a.QoS,
			hist: reg.Histogram(telemetry.MetricWorkflowLatency + "." + a.Name),
		}
	}
	sort.Strings(s.appNames)

	// Phase 3: pool management, fitted at the training boundary on the
	// arrivals ingested so far.
	if opts.PoolFactory != nil {
		s.mgr = pool.NewManager(s.cl)
		s.mgr.IntervalSec = opts.intervalSec()
		s.mgr.ApplyAfter = s.trainCut
		s.mgr.Guard = opts.PoolGuard
		policies := make(map[string]pool.Policy)
		for _, a := range opts.Apps {
			for _, fn := range a.FunctionNames() {
				p := opts.PoolFactory(fn)
				policies[fn] = p
				s.mgr.Manage(fn, p, 0)
			}
		}
		s.mgr.Start()
		s.eng.Schedule(s.trainCut, func() {
			for _, a := range s.opts.Apps {
				tr := s.traces[a.Name]
				for _, fn := range a.FunctionNames() {
					policies[fn].Fit(pool.FitData{
						Demand:   s.mgr.History(fn),
						Arrivals: arrivalsBefore(tr.Arrivals, s.trainCut),
						FeatFn:   func(i int) []float64 { return tr.Features(i) },
					})
				}
			}
		})
	}
	s.eng.Schedule(s.trainCut, func() { s.provBase = s.cl.Metrics().ProvisionedMemTime() })

	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
		j, err := CreateJournal(filepath.Join(opts.CheckpointDir, "stream.jsonl"))
		if err != nil {
			return nil, err
		}
		s.journal = j
	}
	return s, nil
}

func arrivalsBefore(arrivals []float64, cut float64) []float64 {
	var out []float64
	for _, a := range arrivals {
		if a < cut {
			out = append(out, a)
		}
	}
	return out
}

// RequestStop asks the serving loop to stop at the next record boundary.
// Safe to call from a signal handler goroutine; the loop itself is
// single-threaded.
func (s *Server) RequestStop() { s.stop.Store(true) }

// Ingested returns how many stream records have been scheduled (journal
// replays included) — the prefix a resumed live source must Skip.
func (s *Server) Ingested() int { return s.ingested }

// Boundary returns the number of completed interval boundaries.
func (s *Server) Boundary() int { return s.k }

// Engine exposes the virtual clock (tests and the CLI summary use it).
func (s *Server) Engine() *sim.Engine { return s.eng }

// ingest schedules one arrival. Draws happen when the event fires, so the
// per-app request stream consumes its RNG in engine event order — the same
// order a batch loadgen.Driver produces.
func (s *Server) ingest(rec Record) error {
	a, ok := s.appsByName[rec.App]
	if !ok {
		return fmt.Errorf("serve: record %d targets unknown app %q", s.ingested, rec.App)
	}
	if rec.T < s.lastT {
		return fmt.Errorf("serve: record %d goes back in time (%g after %g)", s.ingested, rec.T, s.lastT)
	}
	if math.IsNaN(rec.T) || rec.T < 0 {
		return fmt.Errorf("serve: record %d has invalid time %g", s.ingested, rec.T)
	}
	if !s.replaying && s.journal != nil {
		if err := s.journal.Append(rec); err != nil {
			return err
		}
	}
	s.lastT = rec.T
	s.traces[rec.App].Arrivals = append(s.traces[rec.App].Arrivals, rec.T)
	rng := s.rngs[rec.App]
	st := s.stats[rec.App]
	at := rec.T
	s.eng.Schedule(at, func() {
		input := a.Input(rng)
		widths := a.Widths(rng)
		err := s.ex.Execute(a.DAG, input, widths, func(r workflow.Result) {
			s.onResult(st, r)
		})
		if err != nil {
			panic(err)
		}
	})
	s.ingested++
	return nil
}

// onResult mirrors core.Run's per-workflow accounting.
func (s *Server) onResult(st *appStats, r workflow.Result) {
	if r.SubmitTime < s.trainCut {
		return
	}
	st.res.Workflows++
	if r.Failed {
		st.res.QoSViolations++
		st.res.FailedWorkflows++
		if r.ShedStages > 0 {
			st.res.ShedViolations++
		} else {
			st.res.FailureViolations++
		}
	} else if r.Latency() > st.qos {
		st.res.QoSViolations++
		st.res.LatencyViolations++
	}
	st.res.Retries += r.Retries
	st.res.Hedges += r.Hedges
	st.res.RetriesDenied += r.RetriesDenied
	st.res.HedgesSkipped += r.HedgesSkipped
	st.res.ShedInvocations += r.Sheds
	st.res.ColdStarts += r.ColdStarts
	st.res.Invocations += r.Invocations
	st.res.CPUTime += r.CPUTime()
	st.res.MemTime += r.MemTime()
	if !r.Failed {
		st.lats = append(st.lats, r.Latency())
		st.hist.Observe(r.Latency())
	}
}

// advance runs the engine to the next interval boundary, makes the
// journal durable, and cuts a checkpoint there.
func (s *Server) advance() error {
	boundary := s.nextBoundary
	s.eng.RunUntil(boundary)
	s.k++
	s.nextBoundary += s.opts.intervalSec()
	if s.replaying {
		if s.verifyFile != nil && s.k == s.verifyAtK {
			if err := s.verifyAgainst(s.verifyFile); err != nil {
				return err
			}
			s.verified = true
		}
		return nil
	}
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Sync(); err != nil {
		return err
	}
	return s.writeCheckpoint(checkpointName(s.k), false)
}

func checkpointName(k int) string { return fmt.Sprintf("checkpoint-%06d.aqcp", k) }

// assemble collects the current component snapshots into sections plus the
// serve header. Called at boundaries (and at final-stop), when no event is
// mid-flight, so every Snapshot observes a quiescent component.
func (s *Server) assemble(final bool) *checkpoint.File {
	f := &checkpoint.File{Version: checkpoint.Version}

	hdr := checkpoint.NewEncoder()
	hdr.String("serve.header")
	hdr.Bool(final)
	hdr.I64(s.opts.Seed)
	hdr.String(s.digest)
	hdr.F64(s.eng.Now())
	hdr.Int(s.k)
	hdr.Int(s.ingested)
	hdr.F64(s.lastT)
	if s.journal != nil {
		hdr.I64(s.journal.Offset())
		hdr.Blob(s.journal.PrefixSHA256())
	} else {
		hdr.I64(0)
		hdr.Blob(nil)
	}
	f.Header = hdr.Bytes()

	add := func(name string, fn func(*checkpoint.Encoder)) {
		enc := checkpoint.NewEncoder()
		fn(enc)
		f.AddSection(name, enc.Bytes())
	}
	add("faas.cluster", s.cl.Snapshot)
	add("sim.engine", s.eng.Snapshot)
	add("workflow.executor", s.ex.Snapshot)
	add("telemetry.registry", s.reg.SnapshotTo)
	if s.col != nil {
		add("telemetry.spans", s.col.SnapshotTo)
	}
	if s.mgr != nil {
		add("pool.manager", s.mgr.Snapshot)
	}
	if s.inj != nil {
		add("chaos.injector", s.inj.Snapshot)
	}
	if s.opts.Meter != nil {
		add("sched.meter", s.opts.Meter.Snapshot)
	}
	for _, name := range s.appNames {
		name := name
		add("loadgen.rng."+name, s.rngs[name].Snapshot)
		add("serve.stats."+name, func(enc *checkpoint.Encoder) {
			s.snapshotStats(enc, s.stats[name])
		})
	}
	f.SortSections()
	return f
}

func (s *Server) snapshotStats(enc *checkpoint.Encoder, st *appStats) {
	enc.String("serve.stats")
	r := st.res
	for _, v := range []int{
		r.Workflows, r.QoSViolations, r.LatencyViolations, r.FailureViolations,
		r.ShedViolations, r.FailedWorkflows, r.Retries, r.Hedges,
		r.RetriesDenied, r.HedgesSkipped, r.ShedInvocations, r.ColdStarts,
		r.Invocations,
	} {
		enc.Int(v)
	}
	enc.F64(r.CPUTime)
	enc.F64(r.MemTime)
	enc.F64s(st.lats)
}

// writeCheckpoint atomically writes the current state snapshot.
func (s *Server) writeCheckpoint(name string, final bool) error {
	f := s.assemble(final)
	path := filepath.Join(s.opts.CheckpointDir, name)
	if err := checkpoint.WriteFile(path, f); err != nil {
		return fmt.Errorf("serve: checkpoint %s: %w", name, err)
	}
	return nil
}

// verifyAgainst byte-compares the re-derived component snapshots with the
// checkpoint's stored sections — the restore-equals-uninterrupted contract
// made operational. Any mismatch means the replay environment diverged
// from the run that cut the checkpoint and continuing would silently fork
// history, so it is a hard error.
func (s *Server) verifyAgainst(want *checkpoint.File) error {
	got := s.assemble(false)
	if len(got.Sections) != len(want.Sections) {
		return fmt.Errorf("serve: restore verification: %d sections re-derived, checkpoint has %d",
			len(got.Sections), len(want.Sections))
	}
	for i, w := range want.Sections {
		g := got.Sections[i]
		if g.Name != w.Name {
			return fmt.Errorf("serve: restore verification: section %d is %q, checkpoint has %q", i, g.Name, w.Name)
		}
		if !bytesEqual(g.Data, w.Data) {
			return fmt.Errorf("serve: restore verification: section %q diverged after replay (%d vs %d bytes)",
				w.Name, len(g.Data), len(w.Data))
		}
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run ingests the stream to completion: records are scheduled as they
// arrive, the engine advances interval by interval as virtual time crosses
// each boundary, and every boundary cuts a durable checkpoint. On EOF the
// remaining boundaries run, in-flight work drains, and a final checkpoint
// is written. Returns ErrCrashed if an armed KindCrash fault fired and
// ErrStopped after RequestStop (final checkpoint already flushed).
func (s *Server) Run(src *Source) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSentinel); ok {
				err = ErrCrashed
				return
			}
			panic(r)
		}
	}()
	if err := s.consume(src); err != nil {
		if errors.Is(err, ErrStopped) {
			if ferr := s.finalStop(); ferr != nil {
				return ferr
			}
		}
		return err
	}
	return s.finalize()
}

// consume drains the source, advancing boundaries as records cross them.
func (s *Server) consume(src *Source) error {
	for {
		if s.stop.Load() {
			return ErrStopped
		}
		rec, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			// A stop request can only interrupt a blocked read by closing
			// the underlying stream (the CLI signal handler does exactly
			// that), which surfaces here as a read error — route it to the
			// graceful-stop path instead of the failure path.
			if s.stop.Load() {
				return ErrStopped
			}
			return err
		}
		// The advance sequence is a pure function of the record stream:
		// stop is only honored between records (top of loop), never
		// mid-advance, so replaying the journal of a stopped run walks
		// the exact same boundary sequence.
		for rec.T >= s.nextBoundary && s.nextBoundary <= s.horizon {
			s.pace()
			if err := s.advance(); err != nil {
				return err
			}
		}
		if err := s.ingest(rec); err != nil {
			return err
		}
	}
}

// pace sleeps one interval's worth of wall time per virtual interval when
// Options.Pace is set: the single, explicit point where the serving loop
// touches the wall clock. Virtual time itself never depends on it.
func (s *Server) pace() {
	if s.opts.Pace <= 0 || s.replaying {
		return
	}
	d := time.Duration(float64(time.Second) * s.opts.intervalSec() / s.opts.Pace)
	time.Sleep(d) //aqualint:allow wallclock serve pacing throttles ingest to wall time by option; virtual time is engine-driven and unaffected
}

// finalize runs out the horizon, drains in-flight work, and cuts the final
// checkpoint.
func (s *Server) finalize() error {
	for s.nextBoundary <= s.horizon {
		s.pace()
		if err := s.advance(); err != nil {
			return err
		}
	}
	s.eng.RunUntil(s.horizon + s.opts.drainSec())
	s.cl.Flush()
	if s.journal != nil && !s.replaying {
		if err := s.journal.Sync(); err != nil {
			return err
		}
		if err := s.writeCheckpoint("checkpoint-final.aqcp", true); err != nil {
			return err
		}
	}
	return nil
}

// finalStop makes the journal durable and cuts a mid-interval final
// checkpoint after RequestStop. The engine is not advanced: replaying the
// journal reconstructs exactly this state, so the checkpoint verifies.
func (s *Server) finalStop() error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Sync(); err != nil {
		return err
	}
	return s.writeCheckpoint("checkpoint-final.aqcp", true)
}

// Result aggregates the run like core.Run does.
func (s *Server) Result() core.Result {
	out := core.Result{PerApp: make(map[string]core.AppResult)}
	for name, st := range s.stats {
		res := st.res
		if len(st.lats) > 0 {
			res.MeanLatency = stats.Mean(st.lats)
			res.P50 = st.hist.Quantile(0.50)
			res.P95 = st.hist.Quantile(0.95)
			res.P99 = st.hist.Quantile(0.99)
		}
		out.PerApp[name] = res
	}
	out.ProvisionedMemGBs = s.cl.Metrics().ProvisionedMemTime() - s.provBase
	if math.IsNaN(out.ProvisionedMemGBs) || out.ProvisionedMemGBs < 0 {
		out.ProvisionedMemGBs = 0
	}
	return out
}
