package faas

import (
	"fmt"
	"math"
	"sort"

	"aquatope/internal/sim"
	"aquatope/internal/stats"
	"aquatope/internal/telemetry"
)

// Noise models platform interference (§2.2 "Uncertainty in FaaS"): Gaussian
// execution-time jitter plus irregular heavy outliers from colocated
// background jobs.
type Noise struct {
	// GaussianStd is the relative standard deviation of inherent noise.
	GaussianStd float64
	// OutlierRate is the per-invocation probability of an interference
	// spike (non-Gaussian noise).
	OutlierRate float64
	// OutlierScale is the maximum slowdown multiplier of a spike.
	OutlierScale float64
}

// apply perturbs a nominal execution time.
func (n Noise) apply(t float64, rng *stats.RNG) float64 {
	if n.GaussianStd > 0 {
		t *= math.Max(0.1, 1+rng.Normal(0, n.GaussianStd))
	}
	if n.OutlierRate > 0 && rng.Bernoulli(n.OutlierRate) {
		hi := n.OutlierScale
		if hi < 1.5 {
			hi = 1.5
		}
		t *= rng.Uniform(1.5, hi)
	}
	return t
}

// Invoker is one worker server hosting containers.
type Invoker struct {
	ID int
	// CPUCapacity in cores and MemoryCapacityMB bound colocation.
	CPUCapacity      float64
	MemoryCapacityMB float64

	cluster    *Cluster
	containers map[*container]struct{}
	memUsedMB  float64
	cpuBusy    float64
	// breaker is the invoker's circuit breaker (nil unless
	// Config.Breaker.Enabled).
	breaker *breaker
	// down marks a crashed invoker: it hosts no containers and the
	// controller routes around it until recovery.
	down bool
	// straggle is a multiplicative execution slowdown (chaos straggler
	// episodes); values <= 1 mean healthy.
	straggle float64
	// util holds the invoker's utilization time integrals (utilization.go).
	util invokerUtil
}

// MemoryInUseMB returns the memory currently claimed by containers.
func (iv *Invoker) MemoryInUseMB() float64 { return iv.memUsedMB }

// Down reports whether the invoker is currently crashed.
func (iv *Invoker) Down() bool { return iv.down }

// function is the cluster-side state of a registered function.
type function struct {
	spec          FunctionSpec
	cfg           ResourceConfig
	keepAlive     float64
	prewarmTarget int
	// containers across all invokers, by state bookkeeping.
	idle    []*container
	warming []*container // not yet reserved
	busyN   int
	// inFlight counts invocations dispatched to a container (possibly
	// still warming) but not yet completed; the concurrency limit is
	// enforced against it.
	inFlight int
	// queue of invocations waiting for concurrency or capacity, bounded
	// by queueLimit (0 = unbounded) under the cluster's admission policy.
	queue      []*pendingInvocation
	queueLimit int
	// execEWMA is the function's observed service time (exponentially
	// weighted over successful runs); deadline-aware shedding uses it to
	// spot queued work whose deadline is already unmeetable.
	execEWMA float64
	// reserved warming containers mapped to their waiters.
	nextContainerID int
}

type pendingInvocation struct {
	inputSize float64
	submitAt  float64
	done      func(InvocationResult)
	// span is the invocation's telemetry span (0 when tracing is off).
	span telemetry.SpanID
	// attempt tags results and spans with the caller's retry attempt.
	attempt int
	// timeoutEv is the armed submission deadline (nil without a timeout);
	// timeout keeps its horizon for deadline-aware shedding.
	timeoutEv *sim.Event
	timeout   float64
	// ct is the container the invocation is reserved on or running in
	// (nil while queued).
	ct *container
	// startTime and cold are valid once execution began.
	startTime float64
	cold      bool
	// settled marks a delivered terminal result; late container events
	// (a reserved container finishing init after a timeout) check it.
	settled bool
}

// Config configures a Cluster.
type Config struct {
	// Invokers is the number of worker servers (paper: 6 workers).
	Invokers int
	// CPUPerInvoker is each worker's core count.
	CPUPerInvoker float64
	// MemoryPerInvokerMB is each worker's container memory capacity.
	MemoryPerInvokerMB float64
	// DefaultKeepAlive is the idle container lifetime (providers: 10 min).
	DefaultKeepAlive float64
	// Noise is the platform interference model.
	Noise Noise
	// QueueLimit bounds every function's pending queue (0 = unbounded,
	// the historical behaviour); SetQueueLimit overrides per function.
	QueueLimit int
	// Admission selects what is shed when a bounded queue overflows.
	Admission AdmissionPolicy
	// Breaker configures the per-invoker circuit breakers (off by
	// default).
	Breaker BreakerConfig
	// Registry, when non-nil, backs the cluster's Metrics so platform
	// counters and latency histograms land in a snapshot shared with
	// other subsystems.
	Registry *telemetry.Registry
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.Invokers <= 0 {
		c.Invokers = 6
	}
	if c.CPUPerInvoker <= 0 {
		c.CPUPerInvoker = 40
	}
	if c.MemoryPerInvokerMB <= 0 {
		c.MemoryPerInvokerMB = 128 * 1024
	}
	if c.DefaultKeepAlive <= 0 {
		c.DefaultKeepAlive = 600
	}
	if c.QueueLimit < 0 {
		c.QueueLimit = 0
	}
	if c.Breaker.Enabled {
		c.Breaker = c.Breaker.withDefaults()
	}
	return c
}

// Cluster is the simulated FaaS platform.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	rng      *stats.RNG
	invokers []*Invoker
	fns      map[string]*function
	fnOrder  []string
	metrics  *Metrics
	tracer   telemetry.Tracer
	draining bool // reentrancy guard for queue draining

	// faults are the active probabilistic fault rates (normally zero);
	// faultRNG is a dedicated stream so enabling them mid-run never
	// perturbs the noise/performance draws of a same-seed run.
	faults        FaultRates
	faultRNG      *stats.RNG
	onInvokerDown []func(invoker int)
}

// NewCluster builds a cluster on the given simulation engine.
func NewCluster(eng *sim.Engine, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		eng:      eng,
		rng:      stats.NewRNG(cfg.Seed),
		faultRNG: stats.NewRNG(cfg.Seed ^ 0x5eed_c4a0_5),
		fns:      make(map[string]*function),
		metrics:  NewMetricsOn(cfg.Registry),
		tracer:   telemetry.Nop{},
	}
	for i := 0; i < cfg.Invokers; i++ {
		iv := &Invoker{
			ID:               i,
			CPUCapacity:      cfg.CPUPerInvoker,
			MemoryCapacityMB: cfg.MemoryPerInvokerMB,
			cluster:          c,
			containers:       make(map[*container]struct{}),
		}
		if cfg.Breaker.Enabled {
			iv.breaker = &breaker{ring: make([]bool, cfg.Breaker.Window)}
		}
		c.invokers = append(c.invokers, iv)
	}
	return c
}

// Engine returns the underlying simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// SetTracer installs the telemetry tracer receiving invocation spans and
// container lifecycle events. A nil tracer restores the no-op default.
func (c *Cluster) SetTracer(t telemetry.Tracer) { c.tracer = telemetry.OrNop(t) }

// Tracer returns the cluster's tracer (never nil).
func (c *Cluster) Tracer() telemetry.Tracer { return c.tracer }

// Metrics returns the cluster's metric accumulator.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Invokers returns the cluster's worker servers.
func (c *Cluster) Invokers() []*Invoker { return c.invokers }

// RegisterFunction adds a function with an initial resource configuration.
func (c *Cluster) RegisterFunction(spec FunctionSpec, cfg ResourceConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if _, dup := c.fns[spec.Name]; dup {
		return fmt.Errorf("faas: duplicate function %q", spec.Name)
	}
	c.fns[spec.Name] = &function{spec: spec, cfg: cfg,
		keepAlive: c.cfg.DefaultKeepAlive, queueLimit: c.cfg.QueueLimit}
	c.fnOrder = append(c.fnOrder, spec.Name)
	return nil
}

// SetResourceConfig updates a function's container configuration; new
// containers use it, existing ones keep theirs (matching OpenWhisk, where
// configuration changes roll out with container churn).
func (c *Cluster) SetResourceConfig(name string, cfg ResourceConfig) error {
	fn, ok := c.fns[name]
	if !ok {
		return fmt.Errorf("faas: unknown function %q", name)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	fn.cfg = cfg
	return nil
}

// ResourceConfigOf returns the function's current configuration.
func (c *Cluster) ResourceConfigOf(name string) (ResourceConfig, bool) {
	fn, ok := c.fns[name]
	if !ok {
		return ResourceConfig{}, false
	}
	return fn.cfg, true
}

// SetKeepAlive sets the idle-container keep-alive duration for a function.
func (c *Cluster) SetKeepAlive(name string, seconds float64) error {
	fn, ok := c.fns[name]
	if !ok {
		return fmt.Errorf("faas: unknown function %q", name)
	}
	fn.keepAlive = seconds
	// Re-arm idle timers with the new horizon.
	for _, ct := range fn.idle {
		c.armIdleTimer(ct)
	}
	return nil
}

// Functions returns the registered function names in registration order.
func (c *Cluster) Functions() []string { return append([]string(nil), c.fnOrder...) }

// Demand returns the function's instantaneous demand: invocations running
// or reserved on containers plus those queued — the quantity the container
// pool must cover to avoid cold starts.
func (c *Cluster) Demand(name string) int {
	fn, ok := c.fns[name]
	if !ok {
		return 0
	}
	return fn.inFlight + len(fn.queue)
}

// WarmCount returns (idle, warming, busy) container counts for a function.
func (c *Cluster) WarmCount(name string) (idle, warming, busy int) {
	fn, ok := c.fns[name]
	if !ok {
		return 0, 0, 0
	}
	return len(fn.idle), len(fn.warming), fn.busyN
}

// SetPrewarmTarget instructs the cluster to keep n containers alive for the
// function (the dynamic pre-warmed container pool interface, §4.3): missing
// containers are created proactively; surplus idle ones are terminated.
func (c *Cluster) SetPrewarmTarget(name string, n int) error {
	fn, ok := c.fns[name]
	if !ok {
		return fmt.Errorf("faas: unknown function %q", name)
	}
	if n < 0 {
		n = 0
	}
	fn.prewarmTarget = n
	alive := len(fn.idle) + len(fn.warming) + fn.busyN
	if alive < n {
		for i := 0; i < n-alive; i++ {
			ct := c.spawnContainer(fn, true)
			if ct == nil {
				break // out of capacity
			}
		}
	} else if alive > n {
		// Terminate surplus idle containers, least recently used first.
		surplus := alive - n
		for surplus > 0 && len(fn.idle) > 0 {
			ct := c.lruIdle(fn)
			c.killContainer(ct)
			surplus--
		}
	}
	return nil
}

// lruIdle returns the least-recently-used idle container of fn.
func (c *Cluster) lruIdle(fn *function) *container {
	var lru *container
	for _, ct := range fn.idle {
		if lru == nil || ct.lastUsed < lru.lastUsed {
			lru = ct
		}
	}
	return lru
}

// Invoke submits an invocation; done is called on completion (may be nil).
func (c *Cluster) Invoke(name string, inputSize float64, done func(InvocationResult)) error {
	return c.InvokeOpts(name, InvokeOptions{InputSize: inputSize}, done)
}

// InvokeSpan is Invoke with an explicit parent telemetry span, linking the
// invocation's span to the workflow stage (or other operation) that issued
// it. The span opens at submission, so its duration covers queue wait and
// cold-start setup as well as execution.
func (c *Cluster) InvokeSpan(name string, inputSize float64, parent telemetry.SpanID, done func(InvocationResult)) error {
	return c.InvokeOpts(name, InvokeOptions{InputSize: inputSize, Parent: parent}, done)
}

// InvokeOpts submits an invocation with full options (parent span, deadline,
// attempt tag). done always receives exactly one terminal result — success,
// failure, or timeout.
func (c *Cluster) InvokeOpts(name string, opts InvokeOptions, done func(InvocationResult)) error {
	fn, ok := c.fns[name]
	if !ok {
		return fmt.Errorf("faas: unknown function %q", name)
	}
	p := &pendingInvocation{
		inputSize: opts.InputSize,
		submitAt:  c.eng.Now(),
		done:      done,
		attempt:   opts.Attempt,
		timeout:   opts.Timeout,
	}
	p.span = c.tracer.StartSpan(telemetry.KindInvocation, name, opts.Parent, p.submitAt)
	if opts.Timeout > 0 {
		p.timeoutEv = c.eng.After(opts.Timeout, func() { c.timeoutPending(fn, p) })
	}
	c.dispatch(fn, p, false)
	return nil
}

// dispatch places an invocation on a container or queues it. requeue marks
// work that was already admitted (popped by drainQueue, or bounced off a
// reclaimed container): it re-enters at the queue's front — preserving FIFO
// order — and is never re-subjected to admission control. It returns false
// when the invocation was parked in the queue (or shed), true when it is on
// its way to a container.
func (c *Cluster) dispatch(fn *function, p *pendingInvocation, requeue bool) bool {
	limit := fn.cfg.Concurrency
	if limit > 0 && fn.inFlight >= limit {
		c.enqueue(fn, p, requeue)
		return false
	}
	// 1. Idle warm container → warm start.
	if len(fn.idle) > 0 {
		ct := fn.idle[len(fn.idle)-1]
		fn.idle = fn.idle[:len(fn.idle)-1]
		fn.inFlight++
		c.runOn(ct, p, false)
		return true
	}
	// 2. Unreserved warming container → wait for it (cold experience).
	if len(fn.warming) > 0 {
		ct := fn.warming[len(fn.warming)-1]
		fn.warming = fn.warming[:len(fn.warming)-1]
		fn.inFlight++
		p.ct = ct
		wait := ct.warmAt - c.eng.Now()
		if wait < 0 {
			wait = 0
		}
		c.eng.After(wait, func() { c.runOn(ct, p, true) })
		return true
	}
	// 3. New container → cold start.
	ct := c.spawnContainer(fn, false)
	if ct == nil {
		// No capacity anywhere: queue until a container dies.
		c.enqueue(fn, p, requeue)
		return false
	}
	// Reserve it immediately.
	fn.warming = fn.warming[:len(fn.warming)-1]
	fn.inFlight++
	p.ct = ct
	wait := ct.warmAt - c.eng.Now()
	c.eng.After(wait, func() { c.runOn(ct, p, true) })
	return true
}

// enqueue parks an invocation in the function's queue. Already-admitted
// work (front=true) re-enters at the head, bypassing admission control;
// fresh arrivals join the tail after passing the admission policy.
func (c *Cluster) enqueue(fn *function, p *pendingInvocation, front bool) {
	if front {
		fn.queue = append(fn.queue, nil)
		copy(fn.queue[1:], fn.queue)
		fn.queue[0] = p
		return
	}
	if !c.admit(fn, p) {
		return // shed; terminal result already delivered
	}
	fn.queue = append(fn.queue, p)
}

// spawnContainer creates a container on the best invoker, evicting idle
// LRU containers cluster-wide if memory is tight. Returns nil when no
// capacity can be freed. The new container is appended to fn.warming.
func (c *Cluster) spawnContainer(fn *function, prewarmed bool) *container {
	iv := c.pickInvoker(fn.cfg.MemoryMB)
	for iv == nil {
		if !c.evictOneIdle() {
			return nil
		}
		iv = c.pickInvoker(fn.cfg.MemoryMB)
	}
	fn.nextContainerID++
	ct := &container{
		id:        fn.nextContainerID,
		fn:        fn,
		invoker:   iv,
		state:     stateWarming,
		cfg:       fn.cfg,
		born:      c.eng.Now(),
		prewarmed: prewarmed,
	}
	init := fn.spec.Model.InitTime(ct.cfg, c.rng)
	ct.warmAt = c.eng.Now() + init
	if c.faults.InitFailure > 0 && c.faultRNG.Bernoulli(c.faults.InitFailure) {
		ct.initFailed = true
	}
	c.accrueUtil(iv)
	iv.containers[ct] = struct{}{}
	iv.memUsedMB += ct.cfg.MemoryMB
	iv.util.created++
	fn.warming = append(fn.warming, ct)
	c.metrics.containerCreated()
	if c.tracer.Enabled() {
		pre := 0.0
		if prewarmed {
			pre = 1
		}
		c.tracer.Point(telemetry.KindContainerCreate, fn.spec.Name, 0, c.eng.Now(), telemetry.Fields{
			"container": float64(ct.id),
			"invoker":   float64(iv.ID),
			"mem_mb":    ct.cfg.MemoryMB,
			"prewarmed": pre,
			"init_s":    init,
		})
	}
	c.eng.Schedule(ct.warmAt, func() {
		if ct.state != stateWarming {
			return // reserved/killed meanwhile
		}
		// Only transition unreserved warming containers; reserved ones
		// are driven by their waiter.
		for i, w := range ct.fn.warming {
			if w == ct {
				if ct.initFailed {
					// Initialization failed: the container dies on
					// the spot instead of going idle.
					c.faultKillContainer(ct, "init-failure")
					return
				}
				c.accrueUtil(ct.invoker)
				ct.state = stateIdle
				ct.fn.warming = append(ct.fn.warming[:i], ct.fn.warming[i+1:]...)
				ct.fn.idle = append(ct.fn.idle, ct)
				ct.lastUsed = c.eng.Now()
				c.armIdleTimer(ct)
				c.drainAllQueues()
				return
			}
		}
	})
	return ct
}

// pickInvoker returns the invoker with the most free memory that fits memMB.
// Crashed invokers — and invokers whose circuit breaker is open — are routed
// around until they recover.
func (c *Cluster) pickInvoker(memMB float64) *Invoker {
	var best *Invoker
	var bestFree float64
	for _, iv := range c.invokers {
		if iv.down || !c.breakerAllows(iv) {
			continue
		}
		free := iv.MemoryCapacityMB - iv.memUsedMB
		if free >= memMB && (best == nil || free > bestFree) {
			best = iv
			bestFree = free
		}
	}
	return best
}

// evictOneIdle terminates the cluster-wide LRU idle container. It returns
// false when no idle container exists.
func (c *Cluster) evictOneIdle() bool {
	var lru *container
	for _, name := range c.fnOrder {
		fn := c.fns[name]
		for _, ct := range fn.idle {
			if lru == nil || ct.lastUsed < lru.lastUsed {
				lru = ct
			}
		}
	}
	if lru == nil {
		return false
	}
	c.killContainer(lru)
	return true
}

// runOn executes a pending invocation on a container.
func (c *Cluster) runOn(ct *container, p *pendingInvocation, coldExperience bool) {
	fn := ct.fn
	if p.settled {
		// The invocation timed out while reserved here. A healthy
		// initialized container joins the idle pool instead of dying.
		if ct.state == stateWarming {
			if ct.initFailed {
				c.faultKillContainer(ct, "init-failure")
			} else {
				c.accrueUtil(ct.invoker)
				ct.state = stateIdle
				ct.lastUsed = c.eng.Now()
				fn.idle = append(fn.idle, ct)
				c.armIdleTimer(ct)
				c.drainAllQueues()
			}
		}
		return
	}
	if ct.state == stateDead {
		fn.inFlight--
		if ct.faultKilled {
			// The reserved container was lost to a fault: surface the
			// failure to the caller (the resilience layer may retry).
			c.failPending(fn, p, OutcomeFailed, ct.faultReason, ct)
			c.drainAllQueues()
		} else {
			// Benign keep-alive race: the container was reclaimed while
			// the waiter slept; re-dispatch (already admitted).
			c.dispatch(fn, p, true)
		}
		return
	}
	if ct.state == stateWarming && ct.initFailed {
		// Reserved container whose initialization failed at warm-up.
		fn.inFlight--
		c.faultKillContainer(ct, "init-failure")
		c.failPending(fn, p, OutcomeFailed, "init-failure", ct)
		c.drainAllQueues()
		return
	}
	if ct.idleTimer != nil {
		ct.idleTimer.Cancel()
		ct.idleTimer = nil
	}
	c.accrueUtil(ct.invoker)
	ct.state = stateBusy
	fn.busyN++
	cold := coldExperience || !ct.everUsed && !warmedAhead(ct, c.eng.Now())
	ct.everUsed = true
	p.ct = ct
	p.cold = cold

	start := c.eng.Now()
	p.startTime = start
	exec := fn.spec.Model.ExecTime(ct.cfg, cold, p.inputSize, c.rng)
	// CPU contention: when the invoker's aggregate demand exceeds its
	// capacity, running containers slow down proportionally.
	iv := ct.invoker
	iv.cpuBusy += ct.cfg.CPU
	if iv.cpuBusy > iv.CPUCapacity {
		exec *= iv.cpuBusy / iv.CPUCapacity
	}
	exec = c.cfg.Noise.apply(exec, c.rng)
	if iv.straggle > 1 {
		// Straggler episode: everything on this invoker runs slow.
		exec *= iv.straggle
	}
	// Fault model: the hosting container may be killed mid-execution
	// (OOM-style), failing the invocation partway through.
	if c.faults.ExecKill > 0 && c.faultRNG.Bernoulli(c.faults.ExecKill) {
		killAt := exec * c.faultRNG.Float64()
		ct.running = p
		ct.execTimer = c.eng.After(killAt, func() {
			c.abortRun(ct, p, OutcomeFailed, "container-kill")
		})
		return
	}

	ct.running = p
	ct.execTimer = c.eng.After(exec, func() {
		c.accrueUtil(iv)
		ct.execTimer = nil
		ct.running = nil
		iv.cpuBusy -= ct.cfg.CPU
		fn.busyN--
		fn.inFlight--
		// Fold the realized service time into the function's EWMA
		// (deadline-aware shedding's estimate of "one more run").
		if fn.execEWMA <= 0 {
			fn.execEWMA = exec
		} else {
			fn.execEWMA = 0.25*exec + 0.75*fn.execEWMA
		}
		res := InvocationResult{
			Function:   fn.spec.Name,
			SubmitTime: p.submitAt,
			StartTime:  start,
			EndTime:    c.eng.Now(),
			ColdStart:  cold,
			WaitTime:   start - p.submitAt,
			ExecTime:   exec,
			CPU:        ct.cfg.CPU,
			MemoryMB:   ct.cfg.MemoryMB,
			Outcome:    OutcomeSuccess,
			Attempt:    p.attempt,
		}
		ct.state = stateIdle
		ct.lastUsed = c.eng.Now()
		fn.idle = append(fn.idle, ct)
		c.armIdleTimer(ct)
		c.deliver(p, res, ct)
		c.drainAllQueues()
	})
}

// abortRun terminates a busy container's in-flight invocation: the
// completion event is canceled, the container dies, and the caller receives
// a terminal non-success result reporting the execution time actually
// burned. Shared by exec-kills, invoker crashes and deadline expiry.
func (c *Cluster) abortRun(ct *container, p *pendingInvocation, outcome Outcome, reason string) {
	iv := ct.invoker
	fn := ct.fn
	if ct.execTimer != nil {
		ct.execTimer.Cancel()
		ct.execTimer = nil
	}
	c.accrueUtil(iv)
	ct.running = nil
	iv.cpuBusy -= ct.cfg.CPU
	fn.busyN--
	fn.inFlight--
	now := c.eng.Now()
	res := InvocationResult{
		Function:      fn.spec.Name,
		SubmitTime:    p.submitAt,
		StartTime:     p.startTime,
		EndTime:       now,
		ColdStart:     p.cold,
		WaitTime:      p.startTime - p.submitAt,
		ExecTime:      now - p.startTime,
		CPU:           ct.cfg.CPU,
		MemoryMB:      ct.cfg.MemoryMB,
		Outcome:       outcome,
		FailureReason: reason,
		Attempt:       p.attempt,
		Err:           fmt.Errorf("faas: %s %s: %s", fn.spec.Name, outcome, reason),
	}
	c.faultKillContainer(ct, reason)
	c.deliver(p, res, ct)
	c.drainAllQueues()
}

// failPending delivers a terminal non-success result for an invocation that
// never reached (or lost) its container. ct supplies configuration context
// when known (may be nil or already dead).
func (c *Cluster) failPending(fn *function, p *pendingInvocation, outcome Outcome, reason string, ct *container) {
	now := c.eng.Now()
	cfg := fn.cfg
	if ct != nil {
		cfg = ct.cfg
	}
	if reason == "" {
		reason = "fault"
	}
	res := InvocationResult{
		Function:      fn.spec.Name,
		SubmitTime:    p.submitAt,
		StartTime:     now,
		EndTime:       now,
		WaitTime:      now - p.submitAt,
		CPU:           cfg.CPU,
		MemoryMB:      cfg.MemoryMB,
		Outcome:       outcome,
		FailureReason: reason,
		Attempt:       p.attempt,
		Err:           fmt.Errorf("faas: %s %s: %s", fn.spec.Name, outcome, reason),
	}
	c.deliver(p, res, ct)
}

// deliver finalizes one invocation: cancels its deadline, records metrics,
// ends its span and invokes the caller's callback.
func (c *Cluster) deliver(p *pendingInvocation, res InvocationResult, ct *container) {
	p.settled = true
	if p.timeoutEv != nil {
		p.timeoutEv.Cancel()
		p.timeoutEv = nil
	}
	c.metrics.record(res)
	// Work that reached a container feeds the hosting invoker's circuit
	// breaker; shed/queued work never touched an invoker and does not.
	if ct != nil {
		c.noteInvokerOutcome(ct.invoker, res.Outcome != OutcomeSuccess)
	}
	if p.span != 0 {
		coldF := 0.0
		if res.ColdStart {
			coldF = 1
		}
		f := telemetry.Fields{
			"cold":    coldF,
			"wait_s":  res.WaitTime,
			"exec_s":  res.ExecTime,
			"cpu":     res.CPU,
			"mem_mb":  res.MemoryMB,
			"outcome": float64(res.Outcome),
			"attempt": float64(res.Attempt),
		}
		if ct != nil {
			f["container"] = float64(ct.id)
			f["invoker"] = float64(ct.invoker.ID)
		}
		c.tracer.EndSpan(p.span, c.eng.Now(), f)
	}
	if p.done != nil {
		p.done(res)
	}
}

// timeoutPending fires when an invocation's deadline expires before it
// completed: queued work is dropped, a reserved warm-up is released, and a
// running container is killed (wedged executions do not come back).
func (c *Cluster) timeoutPending(fn *function, p *pendingInvocation) {
	if p.settled {
		return
	}
	ct := p.ct
	if ct == nil {
		// Still queued: drop it from the queue.
		for i, q := range fn.queue {
			if q == p {
				fn.queue = append(fn.queue[:i], fn.queue[i+1:]...)
				break
			}
		}
		c.failPending(fn, p, OutcomeTimedOut, "timeout", nil)
		return
	}
	switch {
	case ct.state == stateBusy && ct.running == p:
		c.abortRun(ct, p, OutcomeTimedOut, "timeout")
	default:
		// Reserved on a container still warming (or already lost): give
		// up the reservation; runOn sees the settled flag and returns a
		// healthy container to the idle pool.
		fn.inFlight--
		c.failPending(fn, p, OutcomeTimedOut, "timeout", nil)
		c.drainAllQueues()
	}
}

// warmedAhead reports whether the container finished initializing before
// now (i.e., it was sitting warm when the invocation arrived).
func warmedAhead(ct *container, now float64) bool {
	return ct.warmAt <= now && ct.state != stateWarming
}

// drainQueue dispatches queued invocations while capacity allows. Work that
// cannot be placed re-enters at the queue's front (FIFO preserved), which
// also ends the pass: dispatch just proved there is no capacity.
func (c *Cluster) drainQueue(fn *function) {
	for len(fn.queue) > 0 {
		limit := fn.cfg.Concurrency
		if limit > 0 && fn.inFlight >= limit {
			return
		}
		if len(fn.idle) == 0 && len(fn.warming) == 0 {
			// Try to create capacity; if impossible, stay queued.
			if c.pickInvoker(fn.cfg.MemoryMB) == nil && !c.hasIdleAnywhere() {
				return
			}
		}
		p := fn.queue[0]
		fn.queue = fn.queue[1:]
		if !c.dispatch(fn, p, true) {
			return
		}
	}
}

func (c *Cluster) hasIdleAnywhere() bool {
	for _, name := range c.fnOrder {
		if len(c.fns[name].idle) > 0 {
			return true
		}
	}
	return false
}

// armIdleTimer schedules keep-alive termination for an idle container.
// Pre-warm-pool-managed functions (prewarmTarget > 0) skip the timer; the
// pool scheduler owns their lifecycle.
func (c *Cluster) armIdleTimer(ct *container) {
	if ct.idleTimer != nil {
		ct.idleTimer.Cancel()
		ct.idleTimer = nil
	}
	fn := ct.fn
	if fn.prewarmTarget > 0 {
		// Terminate only if above target.
		alive := len(fn.idle) + len(fn.warming) + fn.busyN
		if alive > fn.prewarmTarget && ct.state == stateIdle {
			c.killContainer(ct)
		}
		return
	}
	if fn.keepAlive <= 0 {
		c.killContainer(ct)
		return
	}
	// Expire at lastUsed + keepAlive so that re-arming (e.g. after a
	// keep-alive policy update) never extends a container's life.
	deadline := ct.lastUsed + fn.keepAlive
	delay := deadline - c.eng.Now()
	if delay <= 0 {
		c.killContainer(ct)
		return
	}
	ct.idleTimer = c.eng.After(delay, func() {
		if ct.state == stateIdle {
			c.killContainer(ct)
		}
	})
}

// SetFaultRates installs the probabilistic fault knobs (driven by
// internal/chaos during fault windows). Zero rates cost no RNG draws, so a
// run that never enables them is byte-identical to one before the fault
// model existed.
func (c *Cluster) SetFaultRates(f FaultRates) { c.faults = f }

// Faults returns the active fault rates.
func (c *Cluster) Faults() FaultRates { return c.faults }

// SetStraggler applies a multiplicative execution slowdown to one invoker
// (chaos straggler episodes). Factor <= 1 clears it.
func (c *Cluster) SetStraggler(invoker int, factor float64) {
	if invoker < 0 || invoker >= len(c.invokers) {
		return
	}
	if factor < 1 {
		factor = 1
	}
	c.invokers[invoker].straggle = factor
}

// OnInvokerDown registers a callback fired synchronously after an invoker
// finishes crashing (all containers torn down, in-flight work failed). The
// pool manager uses it to re-warm lost capacity on surviving invokers.
func (c *Cluster) OnInvokerDown(f func(invoker int)) {
	c.onInvokerDown = append(c.onInvokerDown, f)
}

// CrashInvoker takes a worker server down: every resident container dies
// and in-flight invocations on it fail with OutcomeFailed. The controller
// routes around the invoker until RecoverInvoker brings it back.
func (c *Cluster) CrashInvoker(invoker int) {
	if invoker < 0 || invoker >= len(c.invokers) {
		return
	}
	iv := c.invokers[invoker]
	if iv.down {
		return
	}
	iv.down = true
	c.metrics.invokerCrashed()
	// Snapshot and sort: map iteration order must not leak into the
	// deterministic event sequence.
	cts := make([]*container, 0, len(iv.containers))
	for ct := range iv.containers {
		cts = append(cts, ct)
	}
	sort.Slice(cts, func(i, j int) bool {
		if cts[i].fn.spec.Name != cts[j].fn.spec.Name {
			return cts[i].fn.spec.Name < cts[j].fn.spec.Name
		}
		return cts[i].id < cts[j].id
	})
	// Hold queue draining until the whole invoker is torn down, so failed
	// work retried inline cannot land on a container about to die. Pass 1
	// removes idle/warming capacity; pass 2 fails the running work.
	wasDraining := c.draining
	c.draining = true
	for _, ct := range cts {
		if ct.state != stateBusy {
			c.faultKillContainer(ct, "invoker-crash")
		}
	}
	for _, ct := range cts {
		if ct.state == stateBusy && ct.running != nil {
			c.abortRun(ct, ct.running, OutcomeFailed, "invoker-crash")
		}
	}
	c.draining = wasDraining
	c.accrueUtil(iv)
	iv.cpuBusy = 0
	for _, f := range c.onInvokerDown {
		f(invoker)
	}
	c.drainAllQueues()
}

// RecoverInvoker brings a crashed worker back online, empty; queued work
// can immediately spawn containers on it.
func (c *Cluster) RecoverInvoker(invoker int) {
	if invoker < 0 || invoker >= len(c.invokers) {
		return
	}
	iv := c.invokers[invoker]
	if !iv.down {
		return
	}
	iv.down = false
	if c.cfg.Breaker.Enabled && iv.breaker.state != breakerClosed {
		// A recovered invoker starts with a clean slate: the pre-crash
		// error window says nothing about the fresh instance.
		iv.breaker.reset()
		c.breakerEvent(iv, breakerClosed, 0)
	}
	c.drainAllQueues()
}

// faultKillContainer terminates a container because of a fault: waiters
// reserved on it fail instead of silently re-dispatching.
func (c *Cluster) faultKillContainer(ct *container, reason string) {
	if ct.state == stateDead {
		return
	}
	ct.faultKilled = true
	ct.faultReason = reason
	if reason == "init-failure" {
		c.metrics.initFailure()
	}
	c.killContainer(ct)
}

// killContainer releases a container's resources and accounts its
// memory-time.
func (c *Cluster) killContainer(ct *container) {
	if ct.state == stateDead {
		return
	}
	fn := ct.fn
	switch ct.state {
	case stateIdle:
		for i, w := range fn.idle {
			if w == ct {
				fn.idle = append(fn.idle[:i], fn.idle[i+1:]...)
				break
			}
		}
	case stateWarming:
		for i, w := range fn.warming {
			if w == ct {
				fn.warming = append(fn.warming[:i], fn.warming[i+1:]...)
				break
			}
		}
	}
	if ct.idleTimer != nil {
		ct.idleTimer.Cancel()
		ct.idleTimer = nil
	}
	c.accrueUtil(ct.invoker)
	ct.state = stateDead
	delete(ct.invoker.containers, ct)
	ct.invoker.memUsedMB -= ct.cfg.MemoryMB
	ct.invoker.util.killed++
	c.metrics.containerDied(ct.cfg.MemoryMB, c.eng.Now()-ct.born)
	if c.tracer.Enabled() {
		faultF := 0.0
		if ct.faultKilled {
			faultF = 1
		}
		c.tracer.Point(telemetry.KindContainerKill, fn.spec.Name, 0, c.eng.Now(), telemetry.Fields{
			"container":  float64(ct.id),
			"invoker":    float64(ct.invoker.ID),
			"mem_mb":     ct.cfg.MemoryMB,
			"lifetime_s": c.eng.Now() - ct.born,
			"fault":      faultF,
		})
	}
	// Freed capacity may unblock queued work.
	c.drainAllQueues()
}

// drainAllQueues re-dispatches queued invocations across all functions. It
// is reentrancy-guarded: dispatching can evict containers, whose death
// hooks call back here.
func (c *Cluster) drainAllQueues() {
	if c.draining {
		return
	}
	c.draining = true
	defer func() { c.draining = false }()
	for _, name := range c.fnOrder {
		c.drainQueue(c.fns[name])
	}
}

// Flush finalizes metrics for containers still alive (call at the end of a
// simulation before reading memory-time).
func (c *Cluster) Flush() {
	now := c.eng.Now()
	c.flushUtilization(now)
	for _, iv := range c.invokers {
		// Collect and sort before accounting: iterating the pointer-keyed
		// map directly would sum mem-time in random order and perturb the
		// last ULP across same-seed runs.
		alive := make([]*container, 0, len(iv.containers))
		for ct := range iv.containers {
			if ct.state != stateDead {
				alive = append(alive, ct)
			}
		}
		sort.Slice(alive, func(i, j int) bool {
			if alive[i].fn.spec.Name != alive[j].fn.spec.Name {
				return alive[i].fn.spec.Name < alive[j].fn.spec.Name
			}
			return alive[i].id < alive[j].id
		})
		for _, ct := range alive {
			c.metrics.containerDied(ct.cfg.MemoryMB, now-ct.born)
			ct.state = stateDead
		}
		iv.containers = make(map[*container]struct{})
		iv.memUsedMB = 0
	}
	for _, name := range c.fnOrder {
		fn := c.fns[name]
		fn.idle, fn.warming = nil, nil
	}
}

// AliveMemoryMB returns the memory currently held by live containers.
func (c *Cluster) AliveMemoryMB() float64 {
	var s float64
	for _, iv := range c.invokers {
		s += iv.memUsedMB
	}
	return s
}
