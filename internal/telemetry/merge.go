package telemetry

import (
	"math"
	"sort"
)

// This file implements the merge operations behind the parallel replication
// engine (internal/experiments/runner): each replication records into its own
// Collector and Registry, and the engine merges them into the destination in
// deterministic submission order once every replication has finished. Merging
// in a fixed order is what keeps the exported span stream and metric snapshot
// independent of goroutine scheduling.

// Merge appends every span of src, re-basing span IDs (and parent
// references) onto this collector's ID sequence so the merged stream stays
// densely numbered in merge order. Open spans in src are absorbed as-is and
// can no longer be ended through either collector; merge a collector only
// after the run that fed it has completed. src is left untouched.
func (c *Collector) Merge(src *Collector) {
	if c == nil || src == nil {
		return
	}
	spans := src.Spans()
	src.mu.Lock()
	srcNext := src.next
	src.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	offset := c.next - 1
	for _, sp := range spans {
		sp.ID += offset
		if sp.Parent != 0 {
			sp.Parent += offset
		}
		c.spans = append(c.spans, sp)
	}
	c.next += srcNext - 1
}

// Merge folds src's metrics into this registry: counters accumulate, gauges
// take src's value (so merging replications in submission order reproduces
// the last-write-wins semantics of a serial run), and histograms add their
// bucket counts. Histograms absent from the destination adopt src's bucket
// layout; a histogram present in both with a different layout panics, since
// the merged counts would be meaningless. Metric names are visited in sorted
// order, so merging is deterministic. Nil-safe on both sides.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]*Counter, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(src.histograms))
	for k, v := range src.histograms {
		hists[k] = v
	}
	src.mu.Unlock()

	for _, name := range sortedNames(counters) {
		r.Counter(name).Add(counters[name].Value())
	}
	for _, name := range sortedNames(gauges) {
		r.Gauge(name).Set(gauges[name].Value())
	}
	for _, name := range sortedNames(hists) {
		r.mergeHistogram(name, hists[name])
	}
}

// mergeHistogram folds src into the named destination histogram, creating an
// empty clone of src's layout when the destination has none.
func (r *Registry) mergeHistogram(name string, src *Histogram) {
	r.mu.Lock()
	dst, ok := r.histograms[name]
	if !ok {
		dst = src.emptyClone()
		r.histograms[name] = dst
	}
	r.mu.Unlock()
	dst.merge(src)
}

// emptyClone returns a zero-count histogram with an identical bucket layout.
func (h *Histogram) emptyClone() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	edges := append([]float64(nil), h.edges...)
	return &Histogram{
		edges:  edges,
		logG:   h.logG,
		counts: make([]uint64, len(edges)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// merge adds src's observations to h. The layouts must match exactly.
func (h *Histogram) merge(src *Histogram) {
	// Snapshot src first; never hold both locks at once.
	src.mu.Lock()
	edges0 := src.edges[0]
	nEdges := len(src.edges)
	logG := src.logG
	counts := append([]uint64(nil), src.counts...)
	count := src.count
	sum := src.sum
	mn, mx := src.min, src.max
	src.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.edges) != nEdges || h.edges[0] != edges0 || h.logG != logG {
		panic("telemetry: histogram bucket layouts differ in Merge")
	}
	for i, c := range counts {
		h.counts[i] += c
	}
	h.count += count
	h.sum += sum
	if mn < h.min {
		h.min = mn
	}
	if mx > h.max {
		h.max = mx
	}
}

// sortedNames returns the map's keys in sorted order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
