package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsLintClean enforces the acceptance bar for the lint gate: the
// whole repository must pass every analyzer under the default policy with
// zero un-annotated findings. It exercises the real loader (go list +
// export-data type-checking), so it is also the loader's integration
// test.
func TestRepoIsLintClean(t *testing.T) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Skip("not running inside a module")
	}
	root := filepath.Dir(gomod)
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	var typed int
	for _, p := range pkgs {
		if p.Info != nil {
			typed++
		}
	}
	if typed == 0 {
		t.Fatal("loader type-checked no packages; maporder and droppederr would be inert")
	}
	for _, f := range Run(pkgs, DefaultConfig()) {
		t.Errorf("%s", f)
	}
}
