package socialgraph

import (
	"testing"

	"aquatope/internal/stats"
)

func TestReed98Scale(t *testing.T) {
	g := Reed98Like(1)
	if g.NumUsers() != 962 {
		t.Fatalf("users = %d, want 962", g.NumUsers())
	}
	e := g.NumEdges()
	if e < 15000 || e > 23000 {
		t.Fatalf("edges = %d, want ≈18.8K", e)
	}
}

func TestHeavyTailedDegrees(t *testing.T) {
	g := Reed98Like(2)
	max := g.MaxDegree()
	mean := g.MeanDegree()
	// Preferential attachment: hubs should far exceed the mean.
	if float64(max) < 3*mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", max, mean)
	}
}

func TestEdgesSymmetric(t *testing.T) {
	g := Generate(50, 3, 3)
	for u := 0; u < g.NumUsers(); u++ {
		for _, v := range g.Neighbors(u) {
			found := false
			for _, w := range g.Neighbors(v) {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", u, v)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(100, 5, 7)
	b := Generate(100, 5, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should give same graph")
	}
	for u := 0; u < 100; u++ {
		if a.Followers(u) != b.Followers(u) {
			t.Fatal("degree mismatch under same seed")
		}
	}
}

func TestBoundsAndSampling(t *testing.T) {
	g := Generate(20, 2, 4)
	if g.Followers(-1) != 0 || g.Followers(99) != 0 {
		t.Fatal("out-of-range follower count should be 0")
	}
	if g.Neighbors(-1) != nil {
		t.Fatal("out-of-range neighbors should be nil")
	}
	rng := stats.NewRNG(5)
	for i := 0; i < 100; i++ {
		u := g.SampleUser(rng)
		if u < 0 || u >= 20 {
			t.Fatalf("sampled user %d out of range", u)
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	g := Generate(1, 1, 6) // clamped to 2 nodes
	if g.NumUsers() != 2 {
		t.Fatalf("users = %d", g.NumUsers())
	}
	if g.NumEdges() < 1 {
		t.Fatal("seed clique missing")
	}
}

func TestAllNodesConnected(t *testing.T) {
	g := Generate(200, 4, 8)
	for u := 0; u < g.NumUsers(); u++ {
		if g.Followers(u) == 0 {
			t.Fatalf("node %d isolated", u)
		}
	}
}
